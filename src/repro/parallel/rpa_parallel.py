"""Distributed RPA driver over the ``Scheduler`` backend seam.

Runs Algorithm 6's parallel structure — block-column distribution of the
subspace operand, distributed ``nu^{1/2} chi0 nu^{1/2}`` applications,
Rayleigh-Ritz with distributed Gram products, the Eq. 7 convergence check
and the SSA frozen-basis policy — against any execution backend exposing
the :class:`repro.parallel.executor.Scheduler` interface:

* ``simulated`` (default) — the paper's simulated-MPI layer: every rank's
  column slice is *actually executed* sequentially and its measured wall
  time charged to that rank's virtual clock; ScaLAPACK phases and
  collectives are charged through the Fig. 5-calibrated cost models.
  Figures 4, 5 and 6 are regenerated from these simulated walltimes.
* ``serial`` — single-rank reference execution in the driver process.
* ``process`` — orbital fan-out over a persistent process pool
  (:class:`repro.parallel.process_executor.ProcessChi0Operator`).
* ``spmd`` — real shared-memory SPMD workers operating on
  ``multiprocessing.shared_memory`` views of the operands
  (:class:`repro.parallel.spmd.SpmdScheduler`), producing measured —
  not modeled — strong-scaling wall clock.

The math is identical across backends (the scheduler owns only *where*
the two distributed kernels execute and how time is accounted); energies
agree with the serial driver to solver tolerance, bitwise between the
simulated and single-worker SPMD backends.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, nullcontext
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.config import RPAConfig
from repro.core.quadrature import FrequencyQuadrature, transformed_gauss_legendre
from repro.core.sternheimer import Chi0Operator, SternheimerStats
from repro.core.trace import trace_from_eigenvalues
from repro.dft.eigensolvers import chebyshev_filter
from repro.dft.scf import DFTResult
from repro.grid.coulomb import CoulombOperator
from repro.parallel.costmodel import PACE_PHOENIX, MachineProfile
from repro.parallel.distribution import BlockColumnDistribution
from repro.parallel.executor import Scheduler, make_scheduler
from repro.obs.telemetry import get_recorder, recorder_for_level, use_recorder
from repro.obs.tracer import get_tracer
from repro.utils.rng import default_rng
from repro.verify.invariants import get_verifier, use_verifier, verifier_for_level

#: Backends accepted by :func:`compute_rpa_energy_parallel`.
PARALLEL_BACKENDS = ("serial", "simulated", "process", "spmd")


@dataclass
class ParallelPointRecord:
    """Per-quadrature-point timings (virtual or measured, by backend)."""

    index: int
    omega: float
    weight: float
    energy_term: float
    filter_iterations: int
    converged: bool
    simulated_seconds: float
    #: "filtered" / "warm" / "frozen" / "refreshed" — matches the serial
    #: driver's FrequencyPointStats.subspace_mode taxonomy.
    subspace_mode: str = "filtered"
    ssa_error_bound: float = 0.0


@dataclass
class ParallelRPAResult:
    """Outcome of a distributed RPA run."""

    energy: float
    energy_per_atom: float
    points: list[ParallelPointRecord]
    quadrature: FrequencyQuadrature
    n_ranks: int
    machine: MachineProfile
    simulated_walltime: float
    breakdown: dict[str, float]
    comm_seconds: float
    imbalance_seconds: float
    per_rank_chi0_seconds: np.ndarray
    stats: SternheimerStats
    config: RPAConfig
    wall_seconds: float = 0.0
    block_size_cap: int = 1
    n_rank_failures: int = 0
    recycle: object | None = None  # RecycleStats when config.use_recycling
    verify: dict | None = None  # Verifier.summary() (None = verification off)
    telemetry: dict | None = None  # ConvergenceRecorder.payload() (None = off)
    backend: str = "simulated"

    @property
    def converged(self) -> bool:
        return all(p.converged for p in self.points)

    @property
    def degraded_error_bound(self) -> float:
        """Operator-level error bound from degraded Sternheimer solves."""
        return self.stats.degraded_error_bound


def compute_rpa_energy_parallel(
    dft: DFTResult,
    config: RPAConfig,
    n_ranks: int = 1,
    machine: MachineProfile = PACE_PHOENIX,
    coulomb: CoulombOperator | None = None,
    rank_faults: dict[int, int] | None = None,
    backend: str = "simulated",
    n_workers: int | None = None,
    fault_hook=None,
) -> ParallelRPAResult:
    """Run Algorithm 6 on ``n_ranks`` processors of the chosen backend.

    Parameters
    ----------
    dft:
        Converged ground state.
    config:
        RPA configuration; ``config.max_block_size`` is additionally capped
        at ``n_eig / n_ranks`` per Section III-D. ``config.resilience``
        additionally routes every Sternheimer solve through the escalation
        chain, exactly as in the serial driver.
    n_ranks:
        Processor count; must satisfy ``n_ranks <= n_eig`` for the
        column-distributing backends (``simulated``/``spmd``). ``serial``
        requires 1; ``process`` runs the distribution on one rank and
        fans out by orbital instead (see ``n_workers``).
    machine:
        Interconnect/kernel-efficiency profile for the simulated backend
        (default: the paper's PACE-Phoenix). Ignored by the real backends.
    rank_faults:
        Worker deaths: maps rank -> 1-based quadrature-point index at
        whose start the rank dies. Simulated backend: the death is
        virtual (time accounting and trace only). SPMD backend: the
        worker process really exits and recovery re-executes its work.
        Either way its column slice is reassigned to the least-loaded
        surviving rank (manager-worker recovery) and the energies are
        *identical* to the fault-free run. At least one rank must survive.
    backend:
        One of ``serial`` / ``simulated`` / ``process`` / ``spmd``.
    n_workers:
        Worker-process count for ``process``/``spmd`` (defaults to
        ``n_ranks``; for ``spmd`` the workers *are* the ranks).
    fault_hook:
        Test-only per-orbital callable run in ``process``/``spmd`` workers
        before each solve (fault injection).
    """
    if backend not in PARALLEL_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {PARALLEL_BACKENDS})"
        )
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if backend == "serial" and n_ranks != 1:
        raise ValueError("backend='serial' runs on exactly one rank")
    if rank_faults and backend not in ("simulated", "spmd"):
        raise ValueError(
            f"rank_faults require a column-distributing backend "
            f"(simulated/spmd), not {backend!r}"
        )
    if fault_hook is not None and backend not in ("process", "spmd"):
        raise ValueError("fault_hook requires the process or spmd backend")
    if backend in ("process", "spmd"):
        workers = int(n_workers) if n_workers is not None else int(n_ranks)
        if workers < 1:
            raise ValueError("n_workers must be >= 1")
    else:
        workers = None
    if backend == "spmd":
        n_ranks = workers  # SPMD workers are the ranks
    elif backend == "process":
        n_ranks = 1  # fan-out is by orbital; the column layout is trivial
    if backend in ("simulated", "spmd") and n_ranks > config.n_eig:
        raise ValueError(
            f"the paper's distribution requires p <= n_eig (got p={n_ranks}, "
            f"n_eig={config.n_eig})"
        )
    start_wall = time.perf_counter()
    n_d = dft.grid.n_points
    if config.n_eig > n_d:
        raise ValueError(f"n_eig = {config.n_eig} exceeds n_d = {n_d}")
    if coulomb is None:
        coulomb = CoulombOperator(dft.grid, radius=dft.hamiltonian.radius)

    rank_faults = dict(rank_faults or {})
    for r, k_fail in rank_faults.items():
        if not 0 <= r < n_ranks:
            raise ValueError(f"rank_faults names rank {r} but n_ranks = {n_ranks}")
        if k_fail < 1:
            raise ValueError("rank_faults quadrature indices are 1-based")
    if len([r for r, k in rank_faults.items() if k <= config.n_quadrature]) >= n_ranks:
        raise ValueError("rank_faults would kill every rank; one must survive")

    dist = BlockColumnDistribution(config.n_eig, n_ranks)
    block_cap = min(config.max_block_size, dist.max_block_size())
    from repro.core.rpa_energy import _escalation_from
    from repro.solvers.recycle import SolveRecycler

    op_kwargs = dict(
        tol=config.tol_sternheimer,
        max_iterations=config.max_cocg_iterations,
        use_galerkin_guess=config.use_galerkin_guess,
        dynamic_block_size=config.dynamic_block_size,
        fixed_block_size=config.fixed_block_size,
        max_block_size=block_cap,
        escalation=_escalation_from(config),
        on_failure=(config.resilience.on_failure
                    if config.resilience is not None else "degrade"),
        use_preconditioner=config.use_preconditioner,
        use_batched=config.batched_sternheimer,
        solve_dtype=config.solve_dtype,
        recycler=(SolveRecycler(width=config.n_eig)
                  if config.use_recycling else None),
    )
    if backend == "process":
        from repro.parallel.process_executor import ProcessChi0Operator

        chi0op = ProcessChi0Operator(
            dft.hamiltonian, dft.occupied_orbitals, dft.occupied_energies,
            coulomb, n_workers=workers, fault_hook=fault_hook, **op_kwargs,
        )
    else:
        chi0op = Chi0Operator(
            dft.hamiltonian, dft.occupied_orbitals, dft.occupied_energies,
            coulomb, **op_kwargs,
        )

    tracer = get_tracer()
    quad = transformed_gauss_legendre(config.n_quadrature)
    rng = default_rng(config.seed)
    V = rng.standard_normal((n_d, config.n_eig))

    energy = 0.0
    points: list[ParallelPointRecord] = []
    prev_bounds: tuple[float, float, float] | None = None
    prev_converged = False
    with ExitStack() as stack:
        # The scheduler owns backend resources (worker processes, shared
        # memory); it is torn down on every exit path. The SPMD backend
        # forks its workers lazily at first use, *after* the verifier and
        # recorder below are installed, so workers inherit them.
        sched = make_scheduler(
            backend, chi0op, n_ranks=n_ranks, width=config.n_eig,
            machine=machine, rank_faults=rank_faults, fault_hook=fault_hook,
        )
        stack.callback(sched.close)
        # A scheduler may replace the operator's recycler with a
        # backend-shared implementation; resolve it after construction.
        recycler = chi0op.recycler
        # Invariant checking mirrors the serial driver: the config level
        # installs a scoped verifier unless one is already active (e.g. the
        # differential harness drives all backends under one verifier).
        verifier = get_verifier()
        if config.verify_level != "off" and not verifier.enabled:
            verifier = stack.enter_context(
                use_verifier(verifier_for_level(config.verify_level))
            )
        if verifier.enabled:
            verifier.check_quadrature(quad)
        # Telemetry mirrors the serial driver's install-unless-active rule.
        recorder = get_recorder()
        if config.telemetry_level != "off" and not recorder.enabled:
            recorder = stack.enter_context(
                use_recorder(recorder_for_level(config.telemetry_level))
            )
        if recorder.enabled:
            recorder.sweep_started(len(quad))
        stack.enter_context(
            tracer.span("rpa_energy_parallel", system=dft.crystal.label,
                        n_ranks=n_ranks, n_eig=config.n_eig,
                        block_size_cap=block_cap, backend=backend)
        )
        for k in range(1, len(quad) + 1):
            sched.start_point(k)
            omega = float(quad.points[k - 1])
            weight = float(quad.weights[k - 1])
            t_point0 = sched.elapsed
            t_wall0 = time.perf_counter()
            if recorder.enabled:
                recorder.point_started(k, omega)
            # SSA: after a converged reference point the frozen basis is
            # only Rayleigh-Ritzed — same policy as the serial driver.
            ssa_point = config.use_ssa and k > 1 and prev_converged
            if ssa_point:
                (vals, V, converged, iters, err_history, mode,
                 bounds, ssa_bound, guard_triggered,
                 guard_vector) = _parallel_frozen_point(
                    sched,
                    V,
                    omega,
                    refresh_tol=config.ssa_refresh_tol_for(k),
                    degree=config.filter_degree,
                    max_refresh_passes=config.ssa_refresh_passes,
                    on_rotation=(recycler.rotate_frozen
                                 if recycler is not None else None),
                    bounds_seed=prev_bounds,
                    recycler=recycler,
                )
                if guard_triggered or not converged:
                    # SSA acceptance rejected (refresh budget exhausted or
                    # the guard found a missed channel): redo the point with
                    # full filtering, as in the serial driver.
                    if tracer.enabled:
                        tracer.incr("ssa_fallback_points")
                    if guard_vector is not None:
                        # Inject the guard probe's recovery direction (see
                        # the serial driver): the missed channel enters the
                        # fallback warm start with O(1) overlap.
                        V = V.copy()
                        V[:, -1] = guard_vector
                        if recycler is not None:
                            recycler.clear()
                    (vals, V, converged, iters, err_history, mode,
                     bounds) = _parallel_subspace(
                        sched,
                        V,
                        omega,
                        tol=config.tol_subspace_for(k),
                        degree=config.filter_degree,
                        max_iterations=config.max_filter_iterations,
                        on_rotation=(recycler.rotate
                                     if recycler is not None else None),
                        bounds_seed=prev_bounds,
                    )
                    ssa_bound = 0.0
            else:
                (vals, V, converged, iters, err_history, mode,
                 bounds) = _parallel_subspace(
                    sched,
                    V,
                    omega,
                    tol=config.tol_subspace_for(k),
                    degree=config.filter_degree,
                    max_iterations=config.max_filter_iterations,
                    on_rotation=recycler.rotate if recycler is not None else None,
                    bounds_seed=prev_bounds if config.use_ssa else None,
                )
                ssa_bound = 0.0
            if config.use_ssa:
                prev_bounds = bounds or prev_bounds
                prev_converged = converged
            e_k = trace_from_eigenvalues(vals)
            if verifier.enabled:
                verifier.check_trace_identity(vals, e_k, index=k, omega=omega)
            energy += weight * e_k / (2.0 * np.pi)
            simulated = sched.elapsed - t_point0
            if recorder.enabled:
                recorder.point_finished(
                    k, omega=omega, seconds=time.perf_counter() - t_wall0,
                    energy_term=e_k, converged=converged, iterations=iters,
                    error=err_history[-1] if err_history else None,
                    error_history=err_history,
                    simulated_seconds=simulated,
                    subspace_mode=mode,
                )
            if tracer.enabled:
                # One top-row span per quadrature point on the backend's
                # timeline (virtual or measured busy time), all ranks.
                tracer.record("omega_point", t_point0, end=sched.elapsed,
                              domain=sched.time_domain, index=k, omega=omega,
                              filter_iterations=iters, converged=converged,
                              subspace_mode=mode)
                if mode in ("frozen", "refreshed"):
                    tracer.incr(f"omega_points_{mode}")
            points.append(
                ParallelPointRecord(
                    index=k,
                    omega=omega,
                    weight=weight,
                    energy_term=e_k,
                    filter_iterations=iters,
                    converged=converged,
                    simulated_seconds=simulated,
                    subspace_mode=mode,
                    ssa_error_bound=ssa_bound,
                )
            )
        accounting = sched.report()

    return ParallelRPAResult(
        energy=energy,
        energy_per_atom=energy / dft.crystal.n_atoms,
        points=points,
        quadrature=quad,
        n_ranks=sched.n_ranks,
        machine=machine,
        simulated_walltime=accounting["simulated_walltime"],
        breakdown=accounting["breakdown"],
        comm_seconds=accounting["comm_seconds"],
        imbalance_seconds=accounting["imbalance_seconds"],
        per_rank_chi0_seconds=accounting["per_rank_chi0_seconds"],
        stats=chi0op.stats,
        config=config,
        wall_seconds=time.perf_counter() - start_wall,
        block_size_cap=block_cap,
        n_rank_failures=accounting["n_rank_failures"],
        recycle=recycler.stats if recycler is not None else None,
        verify=verifier.summary() if verifier.enabled else None,
        telemetry=recorder.payload() if recorder.enabled else None,
        backend=backend,
    )


# -- the distributed Algorithm 5 ------------------------------------------------


def _parallel_subspace(
    sched: Scheduler,
    V: np.ndarray,
    omega: float,
    tol: float,
    degree: int,
    max_iterations: int,
    on_rotation=None,
    bounds_seed=None,
):
    verifier = get_verifier()
    errors: list[float] = []
    W = sched.apply(V, omega)
    vals, V, W = _parallel_rayleigh_ritz(sched, V, W, on_rotation=on_rotation)
    err = _parallel_eq7(sched, V, W, vals)
    errors.append(err)
    if verifier.enabled:
        verifier.check_ritz_values(vals, err, driver="parallel", iteration=0)
    if err <= tol:
        return vals, V, True, 0, errors, "warm", bounds_seed

    last_bounds = bounds_seed
    used_bounds = None
    for it in range(1, max_iterations + 1):
        low, cut, high = _filter_bounds(vals, seed=last_bounds)
        used_bounds = (low, cut, high)
        if bounds_seed is not None:
            last_bounds = used_bounds
        V = chebyshev_filter(lambda B: sched.apply(B, omega), V, degree, low, cut, high)
        W = sched.apply(V, omega)
        vals, V, W = _parallel_rayleigh_ritz(sched, V, W, on_rotation=on_rotation)
        err = _parallel_eq7(sched, V, W, vals)
        errors.append(err)
        if verifier.enabled:
            verifier.check_ritz_values(vals, err, driver="parallel", iteration=it)
        if err <= tol:
            return vals, V, True, it, errors, "filtered", used_bounds
    return vals, V, False, max_iterations, errors, "filtered", used_bounds


def _parallel_frozen_point(
    sched: Scheduler,
    V: np.ndarray,
    omega: float,
    refresh_tol: float,
    degree: int,
    max_refresh_passes: int,
    on_rotation=None,
    bounds_seed=None,
    recycler=None,
):
    """One SSA point on the distributed backend (repro.core.ssa policy).

    Rayleigh-Ritz in the frozen basis — one distributed apply for the
    projected Grams — with the same cheap-refresh trigger and
    exterior-eigenvalue guard as the serial ``frozen_subspace_point``; the
    energies match the serial SSA path, only the time accounting differs.
    """
    from repro.core.ssa import (
        GUARD_REL_MARGIN,
        exterior_eigenvalue_estimate,
        ssa_error_gauge,
    )

    verifier = get_verifier()

    def run_guard(V_now, vals_now) -> bool:
        # Same guard as the serial SSA path: probe for a deeper eigenvalue
        # the span missed (Eq. 7 is blind to emergent screening channels).
        nonlocal guard_vector
        # Pause the recycler for the probe applies (unrelated single
        # vectors at the block's omega must not touch the solve cache).
        pause = recycler.paused() if recycler is not None else nullcontext()
        with pause:
            probe = exterior_eigenvalue_estimate(
                lambda B: sched.apply(B, omega), V_now
            )
        if probe is None:
            return False
        exterior, exterior_vec = probe
        margin = GUARD_REL_MARGIN * max(abs(float(vals_now[0])), 1e-300)
        triggered = exterior < float(vals_now[-1]) - margin
        if triggered:
            guard_vector = exterior_vec
        return triggered

    errors: list[float] = []
    mode = "frozen"
    last_bounds = bounds_seed
    used_bounds = None
    passes = 0
    guard_triggered = False
    guard_vector = None
    while True:
        W = sched.apply(V, omega)
        V_raw, W_raw = V, W  # pre-rotation operands for the independent check
        vals, V, W = _parallel_rayleigh_ritz(sched, V, W, on_rotation=on_rotation)
        err = _parallel_eq7(sched, V, W, vals)
        errors.append(err)
        if verifier.enabled:
            verifier.check_ritz_values(vals, err, driver="parallel",
                                       subspace_mode=mode, iteration=passes)
            verifier.check_frozen_trace_identity(V_raw, W_raw, vals,
                                                 driver="parallel",
                                                 subspace_mode=mode,
                                                 iteration=passes)
        if err <= refresh_tol or passes >= max_refresh_passes:
            # Guard at acceptance only (serial policy): pre-refresh drift
            # is indistinguishable from a missed channel.
            guard_triggered = run_guard(V, vals)
            break
        mode = "refreshed"
        passes += 1
        low, cut, high = _filter_bounds(vals, seed=last_bounds)
        used_bounds = (low, cut, high)
        last_bounds = used_bounds
        V = chebyshev_filter(lambda B: sched.apply(B, omega), V, degree,
                             low, cut, high)
    residual_norms = np.linalg.norm(W - V * vals, axis=0)
    bound = ssa_error_gauge(vals, residual_norms)
    return (vals, V, bool(err <= refresh_tol), passes, errors, mode,
            used_bounds, bound, guard_triggered, guard_vector)


def _filter_bounds(vals: np.ndarray, seed=None) -> tuple[float, float, float]:
    from repro.core.subspace import _filter_bounds as bounds

    return bounds(vals, seed=seed)


def _parallel_rayleigh_ritz(sched: Scheduler, V, W, on_rotation=None):
    """Rayleigh-Ritz phase: distributed Grams + eigensolve + rotation."""
    n_d, m = V.shape
    t0 = time.perf_counter()
    # Sesquilinear Grams (V^H W / V^H V), matching the serial _rayleigh_ritz:
    # conjugation is a no-op for the real blocks this driver produces, but
    # keeps the two implementations from diverging if complex blocks appear.
    hs, ms = sched.grams(V, W)
    hs = 0.5 * (hs + hs.conj().T)
    ms = 0.5 * (ms + ms.conj().T)
    t_mm = time.perf_counter() - t0

    t0 = time.perf_counter()
    try:
        vals, Q = scipy.linalg.eigh(hs, ms)
    except (np.linalg.LinAlgError, scipy.linalg.LinAlgError, ValueError):
        reg = 1e-12 * max(float(np.trace(ms)) / m, 1.0)
        vals, Q = scipy.linalg.eigh(hs, ms + reg * np.eye(m))
    t_eig = time.perf_counter() - t0

    t0 = time.perf_counter()
    V = V @ Q
    W = W @ Q
    t_rot = time.perf_counter() - t0
    verifier = get_verifier()
    if on_rotation is not None:
        on_rotation(Q)
        if verifier.enabled:
            verifier.note_recycler_rotation(Q)
    if verifier.enabled:
        verifier.check_rotation(Q, driver="parallel")
        if verifier.full:
            verifier.check_basis_orthonormal(V, driver="parallel")

    sched.charge_rayleigh_ritz(n_d, m, t_mm + t_rot, t_eig)
    return vals, V, W


def _parallel_eq7(sched: Scheduler, V, W, vals) -> float:
    """Eq. 7 check: reuses the post-rotation ``W`` (no extra apply).

    The scheduler charges whatever its execution domain pays for this
    phase (the simulated backend re-charges the measured per-rank apply
    durations plus an allreduce; real backends reuse ``W`` for free).
    """
    sched.charge_error_eval()
    num = sched.error_norm(V, W, vals)
    den = len(vals) * np.sqrt(np.sum(vals**2))
    if den == 0.0:
        return float(np.inf) if num > 0 else 0.0
    return float(num / den)
