"""Communication and kernel-efficiency cost models for the simulated runtime.

The paper's experiments ran on the PACE-Phoenix cluster (dual-socket Intel
Xeon Gold 6226, 24 cores/node, 100 Gbps InfiniBand) with MPI + ScaLAPACK.
No MPI is available in this environment, so scaling studies execute every
rank's computational work for real on one machine and charge *modeled*
time for communication, using the classical Hockney alpha-beta model plus
standard collective algorithms:

* point-to-point: ``t = alpha + beta * bytes``
* allreduce (Rabenseifner): ``2 log2(p) alpha + 2 beta * bytes`` (large msg)
* allgather (ring): ``(p - 1) (alpha + beta * bytes_per_rank)``
* block-column -> block-cyclic redistribution: all-to-all of the local
  payload, ``(p - 1)/p`` of the matrix crossing the wire.

Efficiency curves for the ScaLAPACK kernels (tall-skinny pdgemm, pdsyevd)
follow Amdahl-style saturation calibrated to the qualitative behaviour the
paper reports in Figure 5 (matmult scales poorly because the blocks are
tall and skinny; the dense eigensolve stops scaling near ~100 cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MachineProfile:
    """Interconnect and kernel-efficiency parameters of the simulated cluster."""

    name: str
    cores_per_node: int
    #: point-to-point latency (s)
    latency: float
    #: inverse bandwidth (s / byte)
    inv_bandwidth: float
    #: cores beyond which the dense eigensolver stops speeding up (Fig. 5)
    eigensolve_saturation: int
    #: serial fraction of the tall-skinny parallel matmult (Amdahl)
    matmult_serial_fraction: float

    def __post_init__(self) -> None:
        if self.cores_per_node < 1 or self.latency < 0 or self.inv_bandwidth < 0:
            raise ValueError("invalid machine profile parameters")
        if not 0.0 <= self.matmult_serial_fraction < 1.0:
            raise ValueError("matmult_serial_fraction must be in [0, 1)")


#: The paper's cluster: 24-core nodes on 100 Gbps InfiniBand
#: (12.5 GB/s ~ 8e-11 s/byte; ~1.5 us MPI latency).
PACE_PHOENIX = MachineProfile(
    name="PACE-Phoenix",
    cores_per_node=24,
    latency=1.5e-6,
    inv_bandwidth=8.0e-11,
    eigensolve_saturation=96,
    matmult_serial_fraction=0.05,
)


def p2p_time(machine: MachineProfile, nbytes: float) -> float:
    """Hockney point-to-point transfer time."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return machine.latency + machine.inv_bandwidth * nbytes


def allreduce_time(machine: MachineProfile, nbytes: float, p: int) -> float:
    """Rabenseifner-style allreduce for ``nbytes`` per rank over ``p`` ranks."""
    if p < 1:
        raise ValueError("p must be >= 1")
    if p == 1:
        return 0.0
    log_p = np.log2(p)
    return 2.0 * log_p * machine.latency + 2.0 * machine.inv_bandwidth * nbytes


def allgather_time(machine: MachineProfile, nbytes_per_rank: float, p: int) -> float:
    """Ring allgather of ``nbytes_per_rank`` contributions."""
    if p < 1:
        raise ValueError("p must be >= 1")
    if p == 1:
        return 0.0
    return (p - 1) * (machine.latency + machine.inv_bandwidth * nbytes_per_rank)


def redistribution_time(machine: MachineProfile, total_bytes: float, p: int) -> float:
    """Block-column <-> block-cyclic redistribution (all-to-all).

    Each rank holds ``total_bytes / p`` and exchanges the fraction
    ``(p - 1)/p`` of it; transfers proceed concurrently, so the time is
    governed by the per-rank payload.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if p == 1:
        return 0.0
    per_rank = total_bytes / p * (p - 1) / p
    return (p - 1) * machine.latency + machine.inv_bandwidth * per_rank


def matmult_parallel_time(machine: MachineProfile, serial_seconds: float, p: int) -> float:
    """Tall-skinny ScaLAPACK pdgemm: Amdahl speedup with a serial fraction.

    The paper attributes matmult's poor scaling to extremely tall-and-skinny
    operands; an Amdahl serial fraction reproduces the observed flattening.
    """
    if p < 1 or serial_seconds < 0:
        raise ValueError("invalid arguments")
    f = machine.matmult_serial_fraction
    return serial_seconds * (f + (1.0 - f) / p)


def eigensolve_parallel_time(machine: MachineProfile, serial_seconds: float, p: int) -> float:
    """pdsyevd-style dense eigensolve: speedup saturates at ``p_sat`` cores."""
    if p < 1 or serial_seconds < 0:
        raise ValueError("invalid arguments")
    effective = min(p, machine.eigensolve_saturation)
    # sqrt-law within the saturated regime: small matrices never reach
    # linear speedup on a distributed eigensolver.
    return serial_seconds / np.sqrt(effective)
