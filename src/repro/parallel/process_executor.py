"""Process-pool backend for Sternheimer solves (true multi-core execution).

The threaded backend (`repro.parallel.executor`) relies on numpy's BLAS
releasing the GIL; for the many small single-column solves the paper's
loose tolerances produce, Python-level overhead keeps threads partially
serialized. This backend fans the ``n_s`` independent orbital solves out
over *processes* instead (fork start method: the operator state is
inherited copy-on-write, only per-orbital solutions cross process
boundaries).

Results are bit-identical to the serial operator: each orbital's solve is
the same deterministic computation, merely executed elsewhere.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.sternheimer import Chi0Operator, SternheimerStats

# Worker-side state, installed once per worker via the initializer.
_WORKER_OP: Chi0Operator | None = None


def _init_worker(op: Chi0Operator) -> None:
    global _WORKER_OP
    _WORKER_OP = op


def _solve_orbital_task(args: tuple[int, np.ndarray, float]):
    j, V, omega = args
    assert _WORKER_OP is not None, "worker not initialized"
    _WORKER_OP.stats = SternheimerStats()  # isolate per-task statistics
    y = _WORKER_OP._solve_orbital(j, V, omega)
    return j, y, _WORKER_OP.stats


class ProcessChi0Operator(Chi0Operator):
    """Drop-in ``Chi0Operator`` distributing orbital solves over processes.

    Parameters
    ----------
    n_workers:
        Process count (defaults to ``min(n_s, cpu_count)``).

    Notes
    -----
    Requires a platform with the ``fork`` start method (Linux). The worker
    pool is created lazily on the first application and reused; call
    :meth:`close` (or use the operator as a context manager) to release the
    processes.
    """

    def __init__(self, *args, n_workers: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if n_workers is None:
            n_workers = min(self.n_occupied, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self,),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessChi0Operator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def apply_chi0(self, v: np.ndarray, omega: float) -> np.ndarray:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        squeeze = False
        V = np.asarray(v, dtype=float)
        if V.ndim == 1:
            V = V[:, None]
            squeeze = True
        if V.shape[0] != self.n_points:
            raise ValueError(f"operand rows {V.shape[0]} != n_d {self.n_points}")

        if self.n_workers == 1:
            out = super().apply_chi0(V, omega)
            return out[:, 0] if squeeze else out

        pool = self._ensure_pool()
        tasks = [(j, V, omega) for j in range(self.n_occupied)]
        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        results = sorted(pool.map(_solve_orbital_task, tasks), key=lambda r: r[0])
        for j, y, stats in results:
            acc += self.psi[:, j : j + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out
