"""Process-pool backend for Sternheimer solves (true multi-core execution).

The threaded backend (`repro.parallel.executor`) relies on numpy's BLAS
releasing the GIL; for the many small single-column solves the paper's
loose tolerances produce, Python-level overhead keeps threads partially
serialized. This backend fans the ``n_s`` independent orbital solves out
over *processes* instead (fork start method: the operator state is
inherited copy-on-write, the per-apply operands — the V block and the
warm-start guesses — travel through ``multiprocessing.shared_memory``
segments, and only per-orbital solutions cross process boundaries; task
arguments are O(metadata), never O(grid)).

Results are bit-identical to the serial operator: each orbital's solve is
the same deterministic computation, merely executed elsewhere.

Fault tolerance: a worker process that dies mid-sweep (OOM kill, segfault
in a native kernel, induced fault) breaks the whole ``ProcessPoolExecutor``.
Instead of surfacing ``BrokenProcessPool`` to the caller, the orchestration
layer rebuilds the pool and resubmits exactly the orbitals whose results
were lost, at most ``max_pool_restarts`` times per application — the
deterministic per-orbital computation makes the recovered result
bit-identical to an undisturbed run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro.core.sternheimer import Chi0Operator, SternheimerStats
from repro.obs.telemetry import ConvergenceRecorder, get_recorder, use_recorder
from repro.obs.tracer import Tracer, get_tracer, use_tracer


class WorkerRecoveryError(RuntimeError):
    """Pool recovery exhausted ``max_pool_restarts`` without completing."""


# Worker-side state, installed once per worker via the initializer.
_WORKER_OP: Chi0Operator | None = None
_WORKER_FAULT: Callable[[int], None] | None = None
# name -> (SharedMemory, ndarray view): per-worker cache of attached
# operand segments (pruned when an apply ships fresh segment names).
_WORKER_SHM: dict[str, tuple] = {}


def _init_worker(op: Chi0Operator, fault_hook: Callable[[int], None] | None = None) -> None:
    global _WORKER_OP, _WORKER_FAULT
    _WORKER_OP = op
    _WORKER_FAULT = fault_hook


class _ShmShipment:
    """Per-apply shared-memory operands: the V block plus warm-start guesses.

    Task arguments used to pickle the full right-hand-side block and every
    orbital's guess into each task — O(grid) serialization per task, per
    quadrature point. This ships them once through shared memory instead:
    the task arguments carry only ``(segment name, shape, dtype)`` triples
    and an orbital -> guess-row index, so per-task IPC is O(metadata).

    The parent owns the segments and unlinks them when the apply finishes
    (workers keep their mappings until they prune, which is safe on POSIX:
    unlink removes the name, not live mappings).
    """

    def __init__(self, V: np.ndarray,
                 guesses: dict[int, np.ndarray | None]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.meta: dict = {"v": self._ship(V)}
        present = [j for j in sorted(guesses) if guesses[j] is not None]
        if present:
            stacked = np.stack(
                [np.ascontiguousarray(guesses[j]) for j in present]
            ).astype(np.complex128, copy=False)
            self.meta["guesses"] = self._ship(stacked)
            self.meta["guess_rows"] = {int(j): i for i, j in enumerate(present)}
        else:
            self.meta["guesses"] = None
            self.meta["guess_rows"] = {}

    def _ship(self, arr: np.ndarray) -> tuple[str, tuple, str, str]:
        # Memory order is preserved (pickle used to preserve it too): the
        # BLAS kernel dispatched for a column solve depends on operand
        # strides, and bit-stability vs the serial operator requires the
        # worker to see the same layout the parent computes with.
        a = np.asarray(arr)
        order = "F" if (a.flags.f_contiguous and not a.flags.c_contiguous) \
            else "C"
        a = np.asarray(a, order=order)
        seg = shared_memory.SharedMemory(create=True, size=max(a.nbytes, 1))
        view = np.ndarray(a.shape, a.dtype, buffer=seg.buf, order=order)
        view[...] = a
        self._segments.append(seg)
        return (seg.name, tuple(a.shape), a.dtype.str, order)

    def unlink(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []


def _shm_attach(ref: tuple[str, tuple, str, str]) -> np.ndarray:
    """Attach (or reuse) a read-only worker view of a shipped segment."""
    name, shape, dtype, order = ref
    cached = _WORKER_SHM.get(name)
    if cached is None:
        seg = shared_memory.SharedMemory(name=name)
        # On 3.11 the attach re-registers the name with the resource
        # tracker, but forked pool workers share the parent's tracker
        # process and its set-valued cache dedups the entry — so the
        # parent's unlink() retires it cleanly. Unregistering here would
        # remove the parent's sole entry and make that unlink() print a
        # tracker KeyError instead.
        view = np.ndarray(shape, np.dtype(dtype), buffer=seg.buf, order=order)
        view.setflags(write=False)
        cached = _WORKER_SHM[name] = (seg, view)
    return cached[1]


def _shm_prune(live: set[str]) -> None:
    """Drop worker attachments whose segments this apply no longer ships."""
    for name in [n for n in _WORKER_SHM if n not in live]:
        seg, _view = _WORKER_SHM.pop(name)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass


def _unpack_operands(meta: dict) -> np.ndarray:
    live = {meta["v"][0]}
    if meta["guesses"] is not None:
        live.add(meta["guesses"][0])
    _shm_prune(live)
    return _shm_attach(meta["v"])


def _guess_for(meta: dict, j: int) -> np.ndarray | None:
    row = meta["guess_rows"].get(j)
    if row is None:
        return None
    # Fresh copy: solvers may use the starting iterate as scratch.
    return np.array(_shm_attach(meta["guesses"])[row], copy=True)


def _solve_orbital_task(args: tuple[int, float, dict]):
    j, omega, meta = args
    V = _unpack_operands(meta)
    x0 = _guess_for(meta, j)
    assert _WORKER_OP is not None, "worker not initialized"
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(j)
    _WORKER_OP.stats = SternheimerStats()  # isolate per-task statistics
    # The forked worker's recycler is a stale copy-on-write snapshot and its
    # stores would be lost with the process; guesses are computed parent-side
    # and shipped in the task args, stores happen parent-side on the results.
    _WORKER_OP.recycler = None
    # Same story for the tracer/recorder: the inherited singletons are dead
    # snapshots. Record into fresh per-task instances and ship their
    # payloads home with the result; the parent folds each orbital's
    # payload in exactly once (results are keyed by orbital, so pool
    # restarts and resubmissions cannot double-count).
    parent_recorder = get_recorder()
    parent_tracer = get_tracer()
    obs: dict | None = None
    with ExitStack() as stack:
        recorder = tracer = None
        if parent_recorder.enabled:
            recorder = stack.enter_context(
                use_recorder(ConvergenceRecorder(level=parent_recorder.level))
            )
        if parent_tracer.enabled:
            tracer = stack.enter_context(use_tracer(Tracer()))
        y = _WORKER_OP._solve_orbital(j, V, omega, x0=x0)
        if recorder is not None or tracer is not None:
            obs = {}
            if recorder is not None:
                obs["telemetry"] = recorder.payload()
            if tracer is not None:
                obs["trace"] = tracer.export_state()
    return j, y, _WORKER_OP.stats, obs


def _solve_orbital_group_task(
    args: tuple[tuple[int, ...], float, dict],
):
    """Batched variant: one fused solve over a contiguous orbital group."""
    group, omega, meta = args
    V = _unpack_operands(meta)
    guesses = {j: _guess_for(meta, j) for j in group}
    assert _WORKER_OP is not None, "worker not initialized"
    if _WORKER_FAULT is not None:
        for j in group:
            _WORKER_FAULT(j)
    _WORKER_OP.stats = SternheimerStats()
    _WORKER_OP.recycler = None  # stores happen parent-side on the results
    parent_recorder = get_recorder()
    parent_tracer = get_tracer()
    obs: dict | None = None
    with ExitStack() as stack:
        recorder = tracer = None
        if parent_recorder.enabled:
            recorder = stack.enter_context(
                use_recorder(ConvergenceRecorder(level=parent_recorder.level))
            )
        if parent_tracer.enabled:
            tracer = stack.enter_context(use_tracer(Tracer()))
        solved = _WORKER_OP._solve_orbitals_batched(list(group), V, omega,
                                                    guesses=guesses)
        if recorder is not None or tracer is not None:
            obs = {}
            if recorder is not None:
                obs["telemetry"] = recorder.payload()
            if tracer is not None:
                obs["trace"] = tracer.export_state()
    return group, solved, _WORKER_OP.stats, obs


class ProcessChi0Operator(Chi0Operator):
    """Drop-in ``Chi0Operator`` distributing orbital solves over processes.

    Parameters
    ----------
    n_workers:
        Process count (defaults to ``min(n_s, cpu_count)``).
    max_pool_restarts:
        How many times one ``apply_chi0`` may rebuild a broken pool and
        resubmit lost orbitals before raising :class:`WorkerRecoveryError`.
    fault_hook:
        Test-only callable run in the worker with the orbital index before
        each solve (see ``repro.resilience.faults.DieOnceFile``).

    Notes
    -----
    Requires a platform with the ``fork`` start method (Linux). The worker
    pool is created lazily on the first application and reused; call
    :meth:`close` (or use the operator as a context manager) to release the
    processes. ``n_pool_restarts`` counts recoveries over the operator's
    lifetime.
    """

    def __init__(self, *args, n_workers: int | None = None,
                 max_pool_restarts: int = 2,
                 fault_hook: Callable[[int], None] | None = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if n_workers is None:
            n_workers = min(self.n_occupied, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be non-negative")
        self.n_workers = int(n_workers)
        self.max_pool_restarts = int(max_pool_restarts)
        self.n_pool_restarts = 0
        self._fault_hook = fault_hook
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self, self._fault_hook),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _submit(self, pool: ProcessPoolExecutor, fn, args):
        """Submission seam: every task enters the pool through here.

        Tests wrap this to assert the pickled task payload stays
        O(metadata) — the grid-sized operands travel via shared memory,
        never through the task arguments.
        """
        return pool.submit(fn, args)

    def __enter__(self) -> "ProcessChi0Operator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def apply_chi0(self, v: np.ndarray, omega: float) -> np.ndarray:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        squeeze = False
        V = np.asarray(v, dtype=float)
        if V.ndim == 1:
            V = V[:, None]
            squeeze = True
        if V.shape[0] != self.n_points:
            raise ValueError(f"operand rows {V.shape[0]} != n_d {self.n_points}")

        if self.n_workers == 1:
            out = super().apply_chi0(V, omega)
            return out[:, 0] if squeeze else out

        if self.use_batched:
            results_b = self._solve_all_orbitals_batched(V, omega)
            acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
            for j in sorted(results_b):
                y, converged = results_b[j]
                acc += self.psi[:, j : j + 1] * y
                if self.recycler is not None:
                    self.recycler.store(j, omega, y, converged=converged)
            out = 4.0 * acc.real
            return out[:, 0] if squeeze else out

        results = self._solve_all_orbitals(V, omega)
        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        for j in sorted(results):
            y, stats, obs = results[j]
            acc += self.psi[:, j : j + 1] * y
            self.stats.merge(stats)
            self._merge_child_obs(obs)
            if self.recycler is not None:
                # Parent-side store: the worker's recycler copy died with it.
                self.recycler.store(j, omega, y,
                                    converged=stats.n_unconverged == 0)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out

    @staticmethod
    def _merge_child_obs(obs: dict | None) -> None:
        """Fold one worker task's observability payload into the parent."""
        if not obs:
            return
        recorder = get_recorder()
        if recorder.enabled and obs.get("telemetry"):
            recorder.merge(obs["telemetry"])
        tracer = get_tracer()
        if tracer.enabled and obs.get("trace"):
            tracer.absorb(obs["trace"])

    def _solve_all_orbitals(self, V: np.ndarray, omega: float) -> dict:
        """Fan the orbital solves out, recovering from dead workers.

        Lost orbitals (their worker died before returning) are resubmitted
        on a fresh pool; completed results are never recomputed.
        """
        tracer = get_tracer()
        pending = set(range(self.n_occupied))
        results: dict[int, tuple[np.ndarray, SternheimerStats, dict | None]] = {}
        # Guesses are looked up once per orbital (not per resubmission, so a
        # pool restart cannot double-count cache hits) and ride along in the
        # task arguments; a miss ships None and the worker falls back to its
        # own Galerkin guess.
        guesses: dict[int, np.ndarray | None] = {
            j: (self.recycler.guess(j, omega, V.shape[1])
                if self.recycler is not None else None)
            for j in sorted(pending)
        }
        restarts_this_apply = 0
        shipment = _ShmShipment(V, guesses)
        try:
            while pending:
                pool = self._ensure_pool()
                futures = {self._submit(pool, _solve_orbital_task,
                                        (j, float(omega), shipment.meta)): j
                           for j in sorted(pending)}
                broken = False
                futures_wait(futures)
                for fut, j in futures.items():
                    try:
                        exc = fut.exception()
                    except BaseException:  # cancelled by a dying pool
                        broken = True
                        continue
                    if exc is None:
                        jj, y, stats, obs = fut.result()
                        results[jj] = (y, stats, obs)
                        pending.discard(jj)
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                    else:
                        raise exc
                if not pending:
                    break
                if not broken:  # pragma: no cover - defensive
                    raise WorkerRecoveryError(
                        f"orbitals {sorted(pending)} returned no result "
                        f"without a pool failure"
                    )
                if restarts_this_apply >= self.max_pool_restarts:
                    raise WorkerRecoveryError(
                        f"pool died {restarts_this_apply + 1} times; giving "
                        f"up on orbitals {sorted(pending)}"
                    )
                restarts_this_apply += 1
                self.n_pool_restarts += 1
                if tracer.enabled:
                    tracer.incr("worker_pool_restarts")
                    tracer.event("worker_pool_restart", lost=len(pending),
                                 restart=restarts_this_apply)
                self.close()  # discard the broken pool; _ensure_pool rebuilds
        except BaseException:
            # A failed apply must not leak a live worker pool: recovery
            # exhaustion and worker-task exceptions land here too.
            self.close()
            raise
        finally:
            shipment.unlink()
        return results

    def _solve_all_orbitals_batched(
        self, V: np.ndarray, omega: float
    ) -> dict[int, tuple[np.ndarray, bool]]:
        """Batched fan-out: one fused solve per contiguous orbital group.

        Mirrors :meth:`_solve_all_orbitals` — parent-side guesses, pool
        recovery keyed by group (a lost group is resubmitted whole; finished
        groups are never recomputed) — but ships ``n_workers`` wide solves
        instead of ``n_s`` narrow ones. Worker stats and observability
        payloads are folded in here; recycler stores happen in the caller
        on the per-orbital results.
        """
        tracer = get_tracer()
        n_groups = max(1, min(self.n_workers, self.n_occupied))
        pending: set[tuple[int, ...]] = {
            tuple(int(j) for j in g)
            for g in np.array_split(np.arange(self.n_occupied), n_groups)
            if g.size
        }
        guesses: dict[int, np.ndarray | None] = {
            j: (self.recycler.guess(j, omega, V.shape[1])
                if self.recycler is not None else None)
            for j in range(self.n_occupied)
        }
        results: dict[int, tuple[np.ndarray, bool]] = {}
        restarts_this_apply = 0
        shipment = _ShmShipment(V, guesses)
        try:
            while pending:
                pool = self._ensure_pool()
                futures = {
                    self._submit(pool, _solve_orbital_group_task,
                                 (g, float(omega), shipment.meta)): g
                    for g in sorted(pending)
                }
                broken = False
                futures_wait(futures)
                for fut, g in futures.items():
                    try:
                        exc = fut.exception()
                    except BaseException:  # cancelled by a dying pool
                        broken = True
                        continue
                    if exc is None:
                        group, solved, stats, obs = fut.result()
                        results.update(solved)
                        self.stats.merge(stats)
                        self._merge_child_obs(obs)
                        pending.discard(tuple(group))
                    elif isinstance(exc, BrokenProcessPool):
                        broken = True
                    else:
                        raise exc
                if not pending:
                    break
                if not broken:  # pragma: no cover - defensive
                    raise WorkerRecoveryError(
                        f"orbital groups {sorted(pending)} returned no result "
                        f"without a pool failure"
                    )
                if restarts_this_apply >= self.max_pool_restarts:
                    raise WorkerRecoveryError(
                        f"pool died {restarts_this_apply + 1} times; giving "
                        f"up on orbital groups {sorted(pending)}"
                    )
                restarts_this_apply += 1
                self.n_pool_restarts += 1
                if tracer.enabled:
                    tracer.incr("worker_pool_restarts")
                    tracer.event("worker_pool_restart", lost=len(pending),
                                 restart=restarts_this_apply)
                self.close()
        except BaseException:
            self.close()  # no orphaned pool on failure paths
            raise
        finally:
            shipment.unlink()
        return results
