"""Real shared-memory SPMD backend for the distributed RPA driver.

Persistent worker processes (``fork`` start method) execute the paper's
block-column work decomposition on ``multiprocessing.shared_memory`` views
of the big operands — the occupied orbitals ``Psi``, the Hamiltonian's
local potential, the subspace block ``V`` / its image ``W``, the Gram
reduction slots, and the solve-recycle cache. Task descriptors carry only
metadata — ``(kind, task id, generation, column/row slice, omega, shm
names)`` — never ndarrays, so per-task IPC is O(1) in the grid size.

Determinism contract (what makes the verify matrix and the fault tests
meaningful):

* Column slices come from the same :class:`BlockColumnDistribution` the
  simulated-MPI backend uses, and each slice's Sternheimer solves are the
  identical computation regardless of *which* worker executes them — so a
  run with planted worker deaths is bit-identical to an undisturbed run,
  and ``n_workers=1`` is bit-identical to the simulated driver at ``p=1``
  (which matches the serial driver to ~1e-12).
* The trace/Gram contractions tree-reduce over ``p0`` *fixed* per-slice
  slots (``p0`` = worker count at construction) in a fixed pairwise
  order. Each rank scatters its column block's contribution —
  ``V^H W[:, lo:hi]`` for the Rayleigh-Ritz Gram, per-column residual
  norms for the Eq. 7 trace — into a zeroed full-width slot, so every
  tree addition combines disjoint supports (``x + 0.0``, exact in IEEE
  arithmetic) and the reduced result is bitwise equal to the serial
  driver's single-gemm assembly. The overlap ``V^H V`` is computed
  unsplit by one rank: for real blocks ``V.conj()`` *is* ``V``, BLAS
  takes a syrk-style aliased path whose bits a column-block gemm cannot
  reproduce. Rank death changes which worker computes a slot, never the
  slot geometry or summation order. (Caveat: a width-1 column slice
  routes through gemv rather than gemm and may differ from the serial
  bits in the last ulp — the block-column layout only produces width-1
  slices when ``n_workers`` approaches ``n_eig``.)
* Recycle-cache stores are task-transactional: a worker stages its stores
  and commits them to shared memory only when the task completes, so a
  mid-task death leaves no partial cache state and the re-executed task
  produces identical counters (the exactly-once telemetry contract).

Worker recovery mirrors the simulated manager-worker policy: a dead
rank's column slices move permanently to the least-loaded survivor
(``rank_failure`` / ``task_reassigned`` trace events, ``domain="real"``),
in-flight tasks are resubmitted, and results are folded exactly once via
a parent-side pending set keyed by globally unique task ids.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import traceback
from contextlib import ExitStack
from multiprocessing import shared_memory

import numpy as np

from repro.core.sternheimer import Chi0Operator, SternheimerStats
from repro.obs.telemetry import ConvergenceRecorder, get_recorder, use_recorder
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.parallel.distribution import BlockColumnDistribution
from repro.parallel.executor import Scheduler, _SliceAssignment
from repro.parallel.process_executor import WorkerRecoveryError
from repro.solvers.recycle import RecycleStats, SolveRecycler
from repro.verify.invariants import (
    Verifier,
    VerifyFailure,
    get_verifier,
    use_verifier,
)

#: Poll interval for result collection (also the death-detection latency).
_POLL_SECONDS = 0.05


class SpmdTaskError(RuntimeError):
    """A worker task raised; carries the worker-side traceback."""


class SharedSolveRecycler(SolveRecycler):
    """A :class:`SolveRecycler` whose cache lives in shared memory.

    Storage is four preallocated arrays (solutions, omega tags, validity
    flags per column, all indexed by orbital) viewing parent-created shm
    segments; the parent and every forked worker hold views of the same
    pages, so stores made by one rank's solves serve guesses — and survive
    parent-side rotations — coherently across the whole SPMD step. The
    arrays are fixed-capacity (``width`` columns per orbital): an entry
    "exists" exactly when any of its validity flags is set, and is
    complete (rotatable/servable at full width) when all are.

    Disjointness makes it race-free without locks: within one distributed
    apply each rank stores only its own global column slice (the
    ``columns()`` scope), and rotations/clears happen parent-side between
    synchronous rounds.

    ``begin_task()`` / ``commit_task()`` bracket one worker task: stores
    are staged locally and written to shared memory only at task
    completion, so a worker death mid-task cannot publish partial state.
    """

    def __init__(self, width: int, sol: np.ndarray, omegas: np.ndarray,
                 valid: np.ndarray, max_orbitals: int | None = None) -> None:
        super().__init__(width=width, max_orbitals=max_orbitals)
        if sol.shape != (omegas.shape[0], sol.shape[1], width):
            raise ValueError("solution block shape mismatch")
        self._sol = sol  # (n_s, n_d, width) complex128
        self._omegas = omegas  # (n_s, width) float64, NaN = untagged
        self._valid = valid  # (n_s, width) bool
        self._staged: list | None = None

    # -- task transaction ------------------------------------------------------

    def begin_task(self) -> None:
        self._staged = []

    def commit_task(self) -> None:
        staged, self._staged = self._staged, None
        for j, lo, hi, omega, sol in staged or []:
            self._write(j, lo, hi, omega, sol)

    def _write(self, j: int, lo: int, hi: int, omega: float,
               solution: np.ndarray) -> None:
        self._sol[j, :, lo:hi] = solution
        self._omegas[j, lo:hi] = omega
        self._valid[j, lo:hi] = True

    # -- cache protocol (mirrors SolveRecycler semantics on shm storage) -------

    def guess(self, j: int, omega: float, n_cols: int) -> np.ndarray | None:
        self.last_guess_kind = None
        self.last_guess_slice = None
        if not self.enabled:
            return None
        lo, hi = self._col0, self._col0 + n_cols
        tracer = get_tracer()
        if hi > self.width or not self._valid[j, lo:hi].all():
            self.stats.misses += 1
            if tracer.enabled:
                tracer.incr("recycle_misses")
            return None
        tags = self._omegas[j, lo:hi]
        if np.all(tags == omega):
            self.stats.hits += 1
            self.last_guess_kind = "hit"
            if tracer.enabled:
                tracer.incr("recycle_hits")
        else:
            self.stats.omega_seeds += 1
            self.last_guess_kind = "seed"
            if tracer.enabled:
                tracer.incr("recycle_omega_seeds")
        self.last_guess_slice = (lo, hi)
        return np.ascontiguousarray(self._sol[j, :, lo:hi])

    def store(self, j: int, omega: float, solution: np.ndarray,
              converged: bool = True) -> bool:
        solution = np.asarray(solution)
        if solution.ndim == 1:
            solution = solution[:, None]
        n_cols = solution.shape[1]
        lo, hi = self._col0, self._col0 + n_cols
        self.last_store_slice = None
        if (not self.enabled or not converged or hi > self.width
                or solution.shape[0] != self._sol.shape[1]):
            self.stats.skipped_stores += 1
            return False
        if (self.max_orbitals is not None and not self._valid[j].any()
                and int(self._valid.any(axis=1).sum()) >= self.max_orbitals):
            self.stats.skipped_stores += 1
            return False
        if self._staged is not None:
            self._staged.append((int(j), lo, hi, float(omega),
                                 np.array(solution, dtype=complex, copy=True)))
        else:
            self._write(int(j), lo, hi, float(omega), solution)
        self.last_store_slice = (lo, hi)
        self.stats.stores += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("recycle_stores")
        return True

    def rotate(self, q: np.ndarray) -> None:
        q = np.asarray(q)
        if q.ndim != 2 or q.shape[0] != self.width:
            return
        tracer = get_tracer()
        started = self._valid.any(axis=1)
        if q.shape[1] != self.width:
            # Fixed-capacity shared storage cannot change width; drop all
            # (the RPA drivers only ever rotate by square Q, so this is a
            # defensive path for diagnostic callers sharing the hook).
            self.stats.dropped += int(started.sum())
            self._valid[:] = False
            self._omegas[:] = np.nan
        else:
            complete = self._valid.all(axis=1)
            for j in np.flatnonzero(started & ~complete):
                # Incomplete entries (a rank's slice missing) cannot be
                # rotated coherently; drop them, as the base class does.
                self._valid[j] = False
                self._omegas[j] = np.nan
                self.stats.dropped += 1
            for j in np.flatnonzero(complete):
                self._sol[j] = self._sol[j] @ q
                tags = self._omegas[j]
                if not np.all(tags == tags[0]):
                    # Mixed-frequency columns blend under rotation: tag as
                    # seeds (served, never an exact omega hit).
                    self._omegas[j] = np.nan
        self.stats.rotations += 1
        if tracer.enabled:
            tracer.incr("recycle_rotations")

    def clear(self) -> None:
        self._valid[:] = False
        self._omegas[:] = np.nan

    @property
    def n_cached_orbitals(self) -> int:
        return int(self._valid.any(axis=1).sum())

    def memory_bytes(self) -> int:
        return int(self._sol.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SharedSolveRecycler(width={self.width}, "
                f"orbitals={self.n_cached_orbitals}, "
                f"stats={self.stats.as_dict()})")


def _install_fault_hook(op: Chi0Operator, hook) -> None:
    """Route every orbital solve through ``hook(j)`` (worker-side).

    Mirrors the process-pool backend's per-orbital fault hook so the same
    ``DieOnceFile`` injectors drive real SPMD worker deaths — including
    mid-task, after earlier orbitals in the slice already solved.
    """
    orig_solve = Chi0Operator._solve_orbital
    orig_batched = Chi0Operator._solve_orbitals_batched

    def hooked_solve(self, j, V, omega, x0=None):
        hook(j)
        return orig_solve(self, j, V, omega, x0=x0)

    def hooked_batched(self, orbitals, V, omega, guesses=None):
        orbitals = [int(j) for j in orbitals]
        for j in orbitals:
            hook(j)
        return orig_batched(self, orbitals, V, omega, guesses=guesses)

    op._solve_orbital = hooked_solve.__get__(op, type(op))
    op._solve_orbitals_batched = hooked_batched.__get__(op, type(op))


def _spmd_worker_main(sched: "SpmdScheduler", rank: int) -> None:
    """Worker loop: inherited (forked) scheduler state, metadata tasks."""
    if sched._fault_hook is not None:
        _install_fault_hook(sched.op, sched._fault_hook)
    task_q = sched._task_qs[rank]
    result_q = sched._result_q
    while True:
        msg = task_q.get()
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "die":
            os._exit(17)
        tid, gen = msg[1], msg[2]
        try:
            t0 = time.perf_counter()
            if kind == "apply":
                payload = sched._worker_apply(msg)
            elif kind == "gram":
                payload = sched._worker_gram(msg)
            elif kind == "gramvv":
                payload = sched._worker_gramvv(msg)
            elif kind == "enorm":
                payload = sched._worker_enorm(msg)
            elif kind == "reduce":
                payload = sched._worker_reduce(msg)
            elif kind == "nreduce":
                payload = sched._worker_nreduce(msg)
            else:
                raise ValueError(f"unknown spmd task kind {kind!r}")
            payload["busy"] = time.perf_counter() - t0
            result_q.put((tid, gen, rank, "ok", payload))
        except BaseException:
            result_q.put((tid, gen, rank, "error", traceback.format_exc()))


class SpmdScheduler(Scheduler, _SliceAssignment):
    """Shared-memory SPMD execution of the distributed RPA kernels.

    Parameters
    ----------
    chi0op:
        The (plain, serial) operator; its ``psi`` block and the
        Hamiltonian's local potential are moved into shared memory, and
        its recycler — if any — is replaced by a
        :class:`SharedSolveRecycler` over shm-backed storage, *before*
        workers fork so every process views the same pages.
    n_ranks:
        Persistent worker count; also the (fixed) Gram reduction slot
        count ``p0``.
    width:
        Distributed column count (the driver's ``n_eig``).
    rank_faults:
        rank -> 1-based quadrature point at whose start the rank is sent a
        real ``die`` control message (``os._exit`` in the worker).
    fault_hook:
        Test-only per-orbital callable run in workers before each solve
        (e.g. :class:`repro.resilience.faults.DieOnceFile`).
    """

    backend = "spmd"

    def __init__(self, chi0op: Chi0Operator, n_ranks: int, width: int,
                 rank_faults: dict[int, int] | None = None,
                 fault_hook=None) -> None:
        super().__init__(chi0op, n_ranks)
        import multiprocessing

        self.width = int(width)
        self.rank_faults = dict(rank_faults or {})
        self._fault_hook = fault_hook
        self.init_assignment(BlockColumnDistribution(self.width, n_ranks))
        n_d = chi0op.n_points
        n_s = chi0op.n_occupied

        # Fixed reduction geometry: one slot per construction-time column
        # slice, combined in a fixed pairwise tree order. Immutable after
        # construction so the slot layout and floating-point summation
        # order never depend on which workers are still alive.
        self.p0 = int(n_ranks)
        dist = BlockColumnDistribution(self.width, n_ranks)
        self._slices0 = [dist.owned_slice(r) for r in range(n_ranks)]

        self._segments: list[shared_memory.SharedMemory] = []
        self._names: dict[str, str] = {}
        self._closed = False
        self._v = self._alloc("V", (n_d, self.width), np.float64)
        self._w = self._alloc("W", (n_d, self.width), np.float64)
        self._gram = self._alloc("gram", (self.p0, self.width, self.width),
                                 np.float64)
        self._ms = self._alloc("ms", (self.width, self.width), np.float64)
        self._nrm = self._alloc("nrm", (self.p0, self.width), np.float64)
        # Zero-copy statics: rebind the operator's big read-only arrays onto
        # shm views so forked workers share one physical copy (no
        # copy-on-write duplication from refcount traffic). Psi keeps its
        # source memory order — BLAS picks (bitwise-)different kernels for
        # transposed vs straight operands, and the Galerkin-guess Grams
        # must match the serial driver's arithmetic exactly.
        psi_order = "F" if (chi0op.psi.flags.f_contiguous
                            and not chi0op.psi.flags.c_contiguous) else "C"
        psi = self._alloc("psi", chi0op.psi.shape, np.float64, order=psi_order)
        psi[...] = chi0op.psi
        chi0op.psi = psi
        vloc = self._alloc("vloc", chi0op.h.v_local.shape, np.float64)
        vloc[...] = chi0op.h.v_local
        chi0op.h.v_local = vloc

        self.recycler = None
        if chi0op.recycler is not None:
            sol = self._alloc("rec_sol", (n_s, n_d, self.width), np.complex128)
            omegas = self._alloc("rec_omega", (n_s, self.width), np.float64)
            valid = self._alloc("rec_valid", (n_s, self.width), np.bool_)
            omegas[:] = np.nan
            self.recycler = SharedSolveRecycler(
                self.width, sol, omegas, valid,
                max_orbitals=chi0op.recycler.max_orbitals,
            )
            chi0op.recycler = self.recycler

        self._gen = 0
        self._next_tid = 0
        self._point = 0
        self._imbalance = 0.0
        self._comm = 0.0
        self._ctx = multiprocessing.get_context("fork")
        self._result_q = self._ctx.Queue()
        self._task_qs = {r: self._ctx.SimpleQueue() for r in range(n_ranks)}
        self._procs: dict[int, object] = {}
        self._live: set[int] = set()
        self._started = False

    # -- shared-memory plumbing -------------------------------------------------

    def _alloc(self, tag: str, shape: tuple, dtype,
               order: str = "C") -> np.ndarray:
        nbytes = max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(seg)
        self._names[tag] = seg.name
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf, order=order)
        view.fill(0)
        return view

    @property
    def _shm_signature(self) -> tuple[str, ...]:
        return tuple(sorted(self._names.values()))

    # -- worker lifecycle -------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Fork the persistent workers (lazily, at first use).

        Deferred so workers snapshot the recorder/verifier the driver
        installs *after* building the scheduler.
        """
        if self._started:
            return
        self._started = True
        for r in range(self.n_ranks):
            proc = self._ctx.Process(target=_spmd_worker_main, args=(self, r),
                                     daemon=True)
            proc.start()
            self._procs[r] = proc
            self._live.add(r)

    def start_point(self, k: int) -> None:
        self._point = k
        faulted = sorted(r for r, kf in self.rank_faults.items() if kf == k)
        if faulted:
            self._ensure_workers()
            for r in faulted:
                if r in self._live:
                    self._task_qs[r].put(("die",))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for r, proc in self._procs.items():
            if proc.is_alive():
                try:
                    self._task_qs[r].put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - defensive
                    pass
        for proc in self._procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        self._result_q.close()
        # Detach the operator from the shm views before releasing them (the
        # views dangle once the segments unmap).
        self.op.psi = np.array(self.op.psi)
        self.op.h.v_local = np.array(self.op.h.v_local)
        if self.recycler is not None:
            # Keep the stats object (results reference it); drop storage.
            self.recycler._sol = np.array(self.recycler._sol)
            self.recycler._omegas = np.array(self.recycler._omegas)
            self.recycler._valid = np.array(self.recycler._valid)
        self._v = self._w = self._gram = self._ms = self._nrm = None
        for seg in self._segments:
            try:
                seg.close()
            except BufferError:  # pragma: no cover - lingering external view
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []

    # -- task rounds ------------------------------------------------------------

    def _tid(self) -> int:
        self._next_tid += 1
        return self._next_tid

    def _least_loaded_live(self) -> int:
        return min(sorted(self._live), key=lambda r: self.per_rank_chi0[r])

    def _retarget(self, msg: tuple) -> tuple[int, tuple]:
        """Pick the new executor for an in-flight task of a dead rank."""
        if msg[0] == "apply":
            start = msg[4]
            for r, slices in self.assignment.items():
                if any(sl.start == start for sl in slices) and r in self._live:
                    return r, msg[:3] + (r,) + msg[4:]
            r = self._least_loaded_live()
            return r, msg[:3] + (r,) + msg[4:]
        return self._least_loaded_live(), msg

    def _check_liveness(self, tasks: dict, pending: dict) -> None:
        dead = [r for r in sorted(self._live) if not self._procs[r].is_alive()]
        if not dead:
            return
        for r in dead:
            self._live.discard(r)
            self._procs[r].join(timeout=1.0)
            if r in self.assignment:
                # Permanent slice reassignment for all future rounds.
                self.fail_rank(r, self._point, domain="real")
        if not self._live:
            raise WorkerRecoveryError(
                "all spmd workers died; cannot recover"
            )
        for tid in sorted(pending):
            if pending[tid] in self._live:
                continue
            new_rank, new_msg = self._retarget(tasks[tid][1])
            tasks[tid] = (new_rank, new_msg)
            pending[tid] = new_rank
            self._task_qs[new_rank].put(new_msg)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("task_resubmitted", rank=new_rank, domain="real",
                             task_id=tid, kind=new_msg[0])

    def _run_round(self, tasks: dict[int, tuple[int, tuple]]) -> dict:
        """Dispatch one synchronous round; return ``{tid: (rank, payload)}``.

        Exactly-once: results are folded only while their task id is still
        pending — a duplicate (the original worker finished *and* died
        before the parent noticed, so the task was also re-executed) is
        dropped, and stale generations are rejected.
        """
        self._ensure_workers()
        for tid in sorted(tasks):
            rank, msg = tasks[tid]
            if rank not in self._live:
                tasks[tid] = self._retarget(msg)
            self._task_qs[tasks[tid][0]].put(tasks[tid][1])
        pending = {tid: rank for tid, (rank, msg) in tasks.items()}
        results: dict[int, tuple[int, dict]] = {}
        while pending:
            try:
                tid, gen, rank, status, payload = self._result_q.get(
                    timeout=_POLL_SECONDS
                )
            except queue_mod.Empty:
                self._check_liveness(tasks, pending)
                continue
            if tid not in pending or gen != self._gen:
                continue
            if status == "error":
                raise SpmdTaskError(
                    f"spmd worker rank {rank} failed task {tid}:\n{payload}"
                )
            del pending[tid]
            results[tid] = (rank, payload)
        return results

    # -- the two distributed kernels -------------------------------------------

    def apply(self, V: np.ndarray, omega: float) -> np.ndarray:
        w = V.shape[1]
        if w > self.width:
            raise ValueError(f"operand width {w} exceeds capacity {self.width}")
        self._gen += 1
        t_round = time.perf_counter()
        self._v[:, :w] = V
        recycle_on = self.recycler is not None and self.recycler.enabled
        sig = self._shm_signature
        tasks: dict[int, tuple[int, tuple]] = {}
        for r in sorted(self.assignment):
            for sl in self.assignment[r]:
                start, stop = sl.start, min(sl.stop, w)
                if stop <= start:
                    continue
                tid = self._tid()
                tasks[tid] = (r, ("apply", tid, self._gen, r, start, stop,
                                  float(omega), w, recycle_on, sig))
        results = self._run_round(tasks)
        durations = np.zeros(self.n_ranks)
        for tid, (rank, payload) in sorted(results.items()):
            durations[rank] += payload["busy"]
            self._fold_payload(payload)
        round_wall = time.perf_counter() - t_round
        self.per_rank_chi0 += durations
        dmax = float(durations.max())
        live = max(len(self._live), 1)
        self._imbalance += (dmax * live - float(durations.sum())) / live
        self._comm += max(round_wall - dmax, 0.0)
        self.breakdown["chi0_apply"] += dmax
        self._elapsed += dmax
        return self._w[:, :w].copy()

    def _slot_owner(self, slot: int) -> int:
        """Current owner of slot ``slot``'s construction-time column slice."""
        start = self._slices0[slot].start
        for r in sorted(self.assignment):
            if r in self._live or not self._started:
                if any(sl.start == start for sl in self.assignment[r]):
                    return r
        return self._least_loaded_live() if self._started else 0

    def _reduce_rounds(self, kind: str, w: int, sig) -> float:
        """Fixed pairwise tree-reduce over the ``p0`` slots of one array.

        Each round folds slot ``i + offset`` into slot ``i``; rounds are
        synchronous barriers, so the summation order is identical no
        matter which worker runs which fold — and identical to the clean
        run after rank deaths. Because every column's contribution lives
        in exactly one slot (the rest hold exact zeros), each fold adds
        ``x + 0.0`` and the reduced slot 0 is bitwise the serial value.
        """
        busy = 0.0
        offset = 1
        while offset < self.p0:
            self._gen += 1
            live = sorted(self._live)
            tasks: dict[int, tuple[int, tuple]] = {}
            for i in range(0, self.p0, 2 * offset):
                src = i + offset
                if src >= self.p0:
                    continue
                tid = self._tid()
                tasks[tid] = (live[(i // (2 * offset)) % len(live)],
                              (kind, tid, self._gen, i, src, w, sig))
            busy += self._round_busy(self._run_round(tasks))
            offset *= 2
        return busy

    def grams(self, V: np.ndarray, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = V.shape[1]
        self._gen += 1
        t_round = time.perf_counter()
        self._v[:, :w] = V
        self._w[:, :w] = W
        self._gram[:, :w, :w] = 0.0
        self._ms[:w, :w] = 0.0
        sig = self._shm_signature
        tasks: dict[int, tuple[int, tuple]] = {}
        for slot, sl in enumerate(self._slices0):
            lo, hi = sl.start, min(sl.stop, w)
            if hi <= lo:
                continue
            tid = self._tid()
            tasks[tid] = (self._slot_owner(slot),
                          ("gram", tid, self._gen, slot, lo, hi, w, sig))
        # The overlap V^H V rides along unsplit (see module docstring: the
        # serial bits come from BLAS's aliased syrk path, which column
        # blocks cannot reproduce); any rank may compute it.
        tid = self._tid()
        tasks[tid] = (self._slot_owner(self.p0 - 1),
                      ("gramvv", tid, self._gen, w, sig))
        busy = self._round_busy(self._run_round(tasks))
        busy += self._reduce_rounds("reduce", w, sig)
        round_wall = time.perf_counter() - t_round
        self._comm += max(round_wall - busy, 0.0)
        hs = self._gram[0, :w, :w].copy()
        ms = self._ms[:w, :w].copy()
        return hs, ms

    def error_norm(self, V: np.ndarray, W: np.ndarray,
                   vals: np.ndarray) -> float:
        """Eq. 7 trace numerator, column-distributed and tree-reduced.

        Each rank writes its columns' residual norms into a zeroed
        full-width slot vector; the fixed pairwise tree-reduce assembles
        the per-column norms (bitwise: disjoint supports), and the final
        sum over columns happens parent-side with the serial driver's
        exact reduction.
        """
        w = V.shape[1]
        self._gen += 1
        t_round = time.perf_counter()
        self._v[:, :w] = V
        self._w[:, :w] = W
        self._nrm[:, :w] = 0.0
        sig = self._shm_signature
        vals_t = tuple(float(x) for x in np.asarray(vals))
        tasks: dict[int, tuple[int, tuple]] = {}
        for slot, sl in enumerate(self._slices0):
            lo, hi = sl.start, min(sl.stop, w)
            if hi <= lo:
                continue
            tid = self._tid()
            tasks[tid] = (self._slot_owner(slot),
                          ("enorm", tid, self._gen, slot, lo, hi, w,
                           vals_t, sig))
        busy = self._round_busy(self._run_round(tasks))
        busy += self._reduce_rounds("nreduce", w, sig)
        round_wall = time.perf_counter() - t_round
        self.breakdown["eval_error"] += busy
        self._elapsed += busy
        self._comm += max(round_wall - busy, 0.0)
        return float(self._nrm[0, :w].sum())

    @staticmethod
    def _round_busy(results: dict) -> float:
        return max((p["busy"] for _r, p in results.values()), default=0.0)

    # -- worker-side task bodies (run in the forked children) --------------------

    def _check_signature(self, sig: tuple) -> None:
        if tuple(sig) != self._shm_signature:
            raise SpmdTaskError(
                "task descriptor names foreign shared-memory segments "
                f"(got {sig}, have {self._shm_signature})"
            )

    def _worker_apply(self, msg: tuple) -> dict:
        (_kind, _tid, _gen, rank, start, stop, omega, w, recycle_on,
         sig) = msg
        self._check_signature(sig)
        op = self.op
        # Contiguous local copy: the strided shm column view must enter the
        # solvers with the same memory layout as the serial driver's
        # operand, so the BLAS-level arithmetic is bitwise identical.
        V = np.ascontiguousarray(self._v[:, start:stop])
        op.stats = SternheimerStats()
        rec = op.recycler
        parent_recorder = get_recorder()
        parent_tracer = get_tracer()
        parent_verifier = get_verifier()
        payload: dict = {}
        with ExitStack() as stack:
            recorder = tracer = verifier = None
            if parent_recorder.enabled:
                recorder = stack.enter_context(
                    use_recorder(ConvergenceRecorder(level=parent_recorder.level))
                )
                stack.enter_context(recorder.rank_scope(rank))
            if parent_tracer.enabled:
                tracer = stack.enter_context(use_tracer(Tracer()))
            if parent_verifier.enabled:
                # Fresh per task (deterministic under re-execution, so a
                # recovered run's verify/tracer counters equal a clean
                # run's); its failure list ships home with the result.
                verifier = stack.enter_context(use_verifier(Verifier(
                    level=parent_verifier.level,
                    strict=parent_verifier.strict,
                    slack=parent_verifier.slack,
                )))
            if rec is not None:
                rec.stats = RecycleStats()
                rec.begin_task()
                saved = rec.enabled
                rec.enabled = bool(recycle_on)
                try:
                    with rec.columns(start, stop):
                        W = op.apply_symmetrized(V, omega)
                finally:
                    rec.enabled = saved
                self._w[:, start:stop] = W
                rec.commit_task()
                payload["recycle"] = rec.stats.as_dict()
            else:
                W = op.apply_symmetrized(V, omega)
                self._w[:, start:stop] = W
            payload["stats"] = op.stats
            if recorder is not None:
                payload["telemetry"] = recorder.payload()
            if tracer is not None:
                payload["trace"] = tracer.export_state()
            if verifier is not None:
                payload["verify"] = {
                    "checks_run": verifier.checks_run,
                    "failures": [
                        {"check": f.check, "message": f.message,
                         "context": f.context}
                        for f in verifier.failures
                    ],
                }
        return payload

    def _worker_gram(self, msg: tuple) -> dict:
        _kind, _tid, _gen, slot, lo, hi, w, sig = msg
        self._check_signature(sig)
        # Contiguous full-height V, like the serial driver's operand; the
        # column block of V^H W is then bitwise the corresponding columns
        # of the serial single gemm.
        vh = np.ascontiguousarray(self._v[:, :w]).conj().T
        self._gram[slot, :w, lo:hi] = vh @ np.ascontiguousarray(
            self._w[:, lo:hi])
        return {}

    def _worker_gramvv(self, msg: tuple) -> dict:
        _kind, _tid, _gen, w, sig = msg
        self._check_signature(sig)
        # Aliased on purpose: for real blocks V.conj() is V itself, and
        # the serial driver's V^H V bits come from the resulting
        # syrk-style BLAS path. Keep the identical aliasing here.
        Vc = np.ascontiguousarray(self._v[:, :w])
        self._ms[:w, :w] = Vc.conj().T @ Vc
        return {}

    def _worker_enorm(self, msg: tuple) -> dict:
        _kind, _tid, _gen, slot, lo, hi, w, vals, sig = msg
        self._check_signature(sig)
        vals_b = np.asarray(vals)[lo:hi]
        Rb = self._w[:, lo:hi] - self._v[:, lo:hi] * vals_b
        self._nrm[slot, lo:hi] = np.linalg.norm(Rb, axis=0)
        return {}

    def _worker_reduce(self, msg: tuple) -> dict:
        _kind, _tid, _gen, dst, src, w, sig = msg
        self._check_signature(sig)
        self._gram[dst, :w, :w] += self._gram[src, :w, :w]
        return {}

    def _worker_nreduce(self, msg: tuple) -> dict:
        _kind, _tid, _gen, dst, src, w, sig = msg
        self._check_signature(sig)
        self._nrm[dst, :w] += self._nrm[src, :w]
        return {}

    # -- parent-side result folding ---------------------------------------------

    def _fold_payload(self, payload: dict) -> None:
        """Fold one accepted apply result into parent-side observability.

        Called exactly once per task id (``_run_round`` guards the pending
        set), so stats, telemetry, trace and recycle counters are never
        double-counted across resubmissions.
        """
        stats = payload.get("stats")
        if stats is not None:
            self.op.stats.merge(stats)
        recorder = get_recorder()
        if recorder.enabled and payload.get("telemetry"):
            recorder.merge(payload["telemetry"])
        tracer = get_tracer()
        if tracer.enabled and payload.get("trace"):
            tracer.absorb(payload["trace"])
        if self.recycler is not None and payload.get("recycle"):
            st = self.recycler.stats
            for key, delta in payload["recycle"].items():
                setattr(st, key, getattr(st, key) + int(delta))
        verifier = get_verifier()
        if verifier.enabled and payload.get("verify"):
            dv = payload["verify"]
            # Direct fold: the worker's tracer already counted these
            # checks, so going through _passed/_failed here would double
            # the verify_* counters.
            verifier.checks_run += int(dv["checks_run"])
            for f in dv["failures"]:
                verifier.failures.append(
                    VerifyFailure(f["check"], f["message"], dict(f["context"]))
                )

    def report(self) -> dict:
        return {
            "simulated_walltime": 0.0,
            "breakdown": dict(self.breakdown),
            "comm_seconds": self._comm,
            "imbalance_seconds": self._imbalance,
            "per_rank_chi0_seconds": self.per_rank_chi0.copy(),
            "n_rank_failures": self.n_rank_failures,
        }
