"""Simulated-MPI runtime and real threaded backend.

Reproduces the paper's parallelization structure (Section III-D) without an
MPI installation: per-rank work is executed for real and timed on virtual
clocks; communication and ScaLAPACK kernels are charged from calibrated
cost models. Figures 4-6 regenerate from these simulated walltimes.
"""

from repro.parallel.costmodel import (
    PACE_PHOENIX,
    MachineProfile,
    allgather_time,
    allreduce_time,
    eigensolve_parallel_time,
    matmult_parallel_time,
    p2p_time,
    redistribution_time,
)
from repro.parallel.distribution import (
    BlockColumnDistribution,
    block_cyclic_redistribution_bytes,
)
from repro.parallel.executor import (
    ProcessPoolScheduler,
    Scheduler,
    SerialScheduler,
    SimulatedScheduler,
    ThreadedChi0Operator,
    make_scheduler,
)
from repro.parallel.process_executor import ProcessChi0Operator, WorkerRecoveryError
from repro.parallel.manager_worker import (
    Chi0WorkloadProfiler,
    RecoveryReplay,
    ScheduleComparison,
    WorkerFailure,
    WorkItem,
    list_schedule_makespan,
    replay_schedule,
    replay_schedule_with_recovery,
    static_block_column_makespan,
)
from repro.parallel.rpa_parallel import (
    PARALLEL_BACKENDS,
    ParallelPointRecord,
    ParallelRPAResult,
    compute_rpa_energy_parallel,
)
from repro.parallel.virtual_clock import VirtualClocks

__all__ = [
    "MachineProfile",
    "PACE_PHOENIX",
    "p2p_time",
    "allreduce_time",
    "allgather_time",
    "redistribution_time",
    "matmult_parallel_time",
    "eigensolve_parallel_time",
    "VirtualClocks",
    "BlockColumnDistribution",
    "block_cyclic_redistribution_bytes",
    "ThreadedChi0Operator",
    "Scheduler",
    "SerialScheduler",
    "SimulatedScheduler",
    "ProcessPoolScheduler",
    "make_scheduler",
    "PARALLEL_BACKENDS",
    "ProcessChi0Operator",
    "WorkerRecoveryError",
    "WorkItem",
    "WorkerFailure",
    "RecoveryReplay",
    "ScheduleComparison",
    "list_schedule_makespan",
    "replay_schedule",
    "replay_schedule_with_recovery",
    "static_block_column_makespan",
    "Chi0WorkloadProfiler",
    "ParallelRPAResult",
    "ParallelPointRecord",
    "compute_rpa_energy_parallel",
]
