"""Data distributions: block-column ownership and redistribution volumes.

The paper's runtime keeps the eigenvector block ``V`` (n_d x n_eig)
distributed by *block columns* — each of the ``p <= n_eig`` processors
owns ``n_eig / p`` full columns (Section III-D), making every chi0
application embarrassingly parallel. The ScaLAPACK steps (subspace
matmults, generalized eigensolve) require a redistribution to a 2-D
block-cyclic layout, whose communication volume this module computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockColumnDistribution:
    """Contiguous column ownership of an ``n_rows x n_cols`` matrix."""

    n_cols: int
    n_ranks: int

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.n_cols < self.n_ranks:
            raise ValueError(
                f"need at least one column per rank: n_cols={self.n_cols} < p={self.n_ranks}"
            )

    def counts(self) -> np.ndarray:
        """Columns owned by each rank (difference at most one)."""
        base, extra = divmod(self.n_cols, self.n_ranks)
        return np.array([base + (1 if r < extra else 0) for r in range(self.n_ranks)])

    def owned_slice(self, rank: int) -> slice:
        """Column slice owned by ``rank``."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range 0..{self.n_ranks - 1}")
        counts = self.counts()
        start = int(counts[:rank].sum())
        return slice(start, start + int(counts[rank]))

    def owner_of(self, col: int) -> int:
        """Rank owning column ``col``."""
        if not 0 <= col < self.n_cols:
            raise ValueError(f"column {col} out of range")
        counts = self.counts()
        bounds = np.cumsum(counts)
        return int(np.searchsorted(bounds, col, side="right"))

    def max_block_size(self) -> int:
        """Algorithm 4's block-size cap ``n_eig / p`` (Section III-D)."""
        return int(self.counts().min())


def block_cyclic_redistribution_bytes(n_rows: int, n_cols: int, itemsize: int = 8) -> float:
    """Total payload of a block-column <-> block-cyclic redistribution.

    All entries move in the worst case; callers divide across ranks via the
    cost model (``repro.parallel.costmodel.redistribution_time``).
    """
    if n_rows < 0 or n_cols < 0 or itemsize <= 0:
        raise ValueError("invalid dimensions")
    return float(n_rows) * float(n_cols) * float(itemsize)
