"""Execution backends and the ``Scheduler`` seam for the distributed driver.

Two things live here:

* :class:`ThreadedChi0Operator` — a drop-in operator fanning orbital solves
  over a thread pool (numpy's BLAS releases the GIL in the dense kernels
  that dominate block COCG).
* The :class:`Scheduler` interface behind which
  ``rpa_parallel.compute_rpa_energy_parallel`` runs *all* of its execution
  backends — serial, simulated-MPI, process-pool and shared-memory SPMD —
  without special-casing any of them. A scheduler owns exactly the two
  distributed kernels of Algorithm 6 (the chi0 application and the
  subspace Gram products), the per-rank work assignment (including rank
  failure recovery), and the time accounting for its execution domain
  (virtual clocks for the simulated backend, measured wall time for the
  real ones). Everything else — Rayleigh-Ritz rotations, the Eq. 7
  residual, SSA policy, recycler rotations — stays in the driver, shared
  verbatim across backends.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.sternheimer import Chi0Operator
from repro.obs.telemetry import get_recorder
from repro.obs.tracer import get_tracer
from repro.parallel.costmodel import (
    MachineProfile,
    allreduce_time,
    eigensolve_parallel_time,
    matmult_parallel_time,
    redistribution_time,
)
from repro.parallel.distribution import (
    BlockColumnDistribution,
    block_cyclic_redistribution_bytes,
)
from repro.parallel.virtual_clock import VirtualClocks


class ThreadedChi0Operator(Chi0Operator):
    """Drop-in ``Chi0Operator`` parallelizing over occupied orbitals.

    Parameters
    ----------
    n_workers:
        Thread count (defaults to ``min(n_s, os.cpu_count())``).

    All other parameters follow :class:`repro.core.sternheimer.Chi0Operator`.
    Statistics are aggregated with a lock-free per-task pattern: each task
    records into its own ``SternheimerStats`` which are merged afterwards,
    so totals are deterministic even under concurrency. Convergence
    telemetry needs no such merging here: all worker threads share the one
    active ``ConvergenceRecorder``, whose ring/counter updates are
    lock-guarded and whose (orbital, ω) scopes are thread-local, so
    concurrent orbitals cannot cross-label each other's records.
    """

    def __init__(self, *args, n_workers: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        import os

        if n_workers is None:
            n_workers = min(self.n_occupied, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)

    def apply_chi0(self, v: np.ndarray, omega: float) -> np.ndarray:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        squeeze = False
        V = np.asarray(v, dtype=float)
        if V.ndim == 1:
            V = V[:, None]
            squeeze = True
        if V.shape[0] != self.n_points:
            raise ValueError(f"operand rows {V.shape[0]} != n_d {self.n_points}")

        from repro.core.sternheimer import SternheimerStats

        if self.use_batched:
            return self._apply_chi0_batched(V, omega, squeeze)

        def task(j: int):
            # Give each task an isolated stats sink by temporarily swapping;
            # the base class records into self.stats, so run on a clone.
            worker = Chi0Operator.__new__(Chi0Operator)
            worker.__dict__.update(self.__dict__)
            worker.stats = SternheimerStats()
            y = worker._solve_orbital(j, V, omega)
            return j, y, worker.stats

        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        if self.n_workers == 1:
            results = [task(j) for j in range(self.n_occupied)]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                results = list(pool.map(task, range(self.n_occupied)))
        for j, y, stats in sorted(results, key=lambda r: r[0]):
            acc += self.psi[:, j : j + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out

    def _apply_chi0_batched(self, V: np.ndarray, omega: float,
                            squeeze: bool) -> np.ndarray:
        """Batched route: contiguous orbital groups, one fused solve each.

        With fewer workers than orbitals each group fuses several orbitals
        into one wide solve, keeping the shared-H-apply advantage inside a
        group while groups run concurrently.
        """
        from repro.core.sternheimer import SternheimerStats

        n_groups = max(1, min(self.n_workers, self.n_occupied))
        groups = [g for g in np.array_split(np.arange(self.n_occupied), n_groups)
                  if g.size]

        def task(group: np.ndarray):
            worker = Chi0Operator.__new__(Chi0Operator)
            worker.__dict__.update(self.__dict__)
            worker.stats = SternheimerStats()
            solved = worker._solve_orbitals_batched([int(j) for j in group],
                                                    V, omega)
            return group, solved, worker.stats

        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        if len(groups) == 1 or self.n_workers == 1:
            results = [task(g) for g in groups]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                results = list(pool.map(task, groups))
        for group, solved, stats in sorted(results, key=lambda r: int(r[0][0])):
            for j in group:
                y, _converged = solved[int(j)]
                acc += self.psi[:, int(j) : int(j) + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out


# -- the Scheduler seam ----------------------------------------------------------


class Scheduler:
    """Execution backend seam for ``compute_rpa_energy_parallel``.

    A scheduler hides *where* the two distributed kernels run; the driver
    never branches on the backend. Contract:

    * :meth:`apply` — one symmetrized chi0 application of the full block.
    * :meth:`grams` — the raw Rayleigh-Ritz products ``V^H W`` / ``V^H V``
      (the driver symmetrizes, eigensolves and rotates).
    * :meth:`start_point` — called at the top of each quadrature point;
      processes any planted rank faults for that point.
    * ``charge_*`` hooks — time-accounting callbacks; only the simulated
      backend charges its virtual clocks there, real backends measure.
    * :meth:`report` — the accounting block folded into
      ``ParallelRPAResult`` (breakdown, comm/imbalance, per-rank seconds,
      rank failures, simulated walltime).
    """

    backend = "abstract"
    #: tracer domain for the driver's per-point spans
    time_domain = "real"

    def __init__(self, chi0op: Chi0Operator, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.op = chi0op
        self.n_ranks = int(n_ranks)
        self.n_rank_failures = 0
        self.per_rank_chi0 = np.zeros(self.n_ranks)
        self.breakdown = {
            "chi0_apply": 0.0,
            "matmult": 0.0,
            "eigensolve": 0.0,
            "eval_error": 0.0,
        }
        self._elapsed = 0.0

    # -- the two distributed kernels -------------------------------------------

    def apply(self, V: np.ndarray, omega: float) -> np.ndarray:
        raise NotImplementedError

    def grams(self, V: np.ndarray, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Raw sesquilinear products ``(V^H W, V^H V)`` (unsymmetrized)."""
        vh = V.conj().T
        return vh @ W, vh @ V

    def error_norm(self, V: np.ndarray, W: np.ndarray,
                   vals: np.ndarray) -> float:
        """Eq. 7 trace numerator ``sum_c ||W_c - vals_c V_c||``.

        In-process backends compute it on the driver's arrays; the SPMD
        backend distributes the per-column norms and tree-reduces them.
        """
        R = W - V * vals
        return float(np.linalg.norm(R, axis=0).sum())

    # -- per-point lifecycle ---------------------------------------------------

    def start_point(self, k: int) -> None:
        """Hook at the top of quadrature point ``k`` (1-based)."""

    # -- time accounting -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Backend time consumed so far (virtual or measured busy time)."""
        return self._elapsed

    def charge_rayleigh_ritz(self, n_d: int, m: int, t_mm_rot: float,
                             t_eig: float) -> None:
        self.breakdown["matmult"] += t_mm_rot
        self.breakdown["eigensolve"] += t_eig
        self._elapsed += t_mm_rot + t_eig

    def charge_error_eval(self) -> None:
        """Eq. 7 accounting (real backends reuse ``W``: nothing to charge)."""

    def report(self) -> dict:
        return {
            "simulated_walltime": 0.0,
            "breakdown": dict(self.breakdown),
            "comm_seconds": 0.0,
            "imbalance_seconds": 0.0,
            "per_rank_chi0_seconds": self.per_rank_chi0.copy(),
            "n_rank_failures": self.n_rank_failures,
        }

    def close(self) -> None:
        """Release backend resources (worker processes, shared memory)."""

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _SliceAssignment:
    """Mutable rank -> column-slices work assignment with failure recovery.

    Starts as the paper's static block-column layout; a failed rank's
    slices move to the least-loaded survivor (the manager-worker recovery
    policy shared by the simulated and SPMD backends).
    """

    def init_assignment(self, dist: BlockColumnDistribution) -> None:
        self.assignment: dict[int, list[slice]] = {
            r: [dist.owned_slice(r)] for r in range(dist.n_ranks)
        }

    def fail_rank(self, r: int, at_point: int, domain: str) -> None:
        slices = self.assignment.pop(r, [])
        self.n_rank_failures += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("rank_failure", rank=r, domain=domain,
                         quadrature_point=at_point)
        for sl in slices:
            survivor = min(self.assignment,
                           key=lambda w: self.per_rank_chi0[w])
            self.assignment[survivor].append(sl)
            if tracer.enabled:
                tracer.event("task_reassigned", rank=survivor, domain=domain,
                             columns=(sl.start, sl.stop), from_rank=r)


class SerialScheduler(Scheduler):
    """Single-rank execution in the driver process (reference backend)."""

    backend = "serial"

    def __init__(self, chi0op: Chi0Operator) -> None:
        super().__init__(chi0op, 1)

    def apply(self, V: np.ndarray, omega: float) -> np.ndarray:
        t0 = time.perf_counter()
        W = self.op.apply_symmetrized(V, omega)
        dur = time.perf_counter() - t0
        self.per_rank_chi0[0] += dur
        self.breakdown["chi0_apply"] += dur
        self._elapsed += dur
        return W


class ProcessPoolScheduler(Scheduler):
    """Process-pool execution: orbital fan-out inside one full-width apply.

    Wraps a :class:`repro.parallel.process_executor.ProcessChi0Operator`;
    its own pool-rebuild recovery applies. Work splits by *orbital*, not by
    column slice, so per-rank attribution is unavailable — only aggregate
    wall time is reported.
    """

    backend = "process"

    def __init__(self, chi0op) -> None:
        super().__init__(chi0op, int(chi0op.n_workers))

    def apply(self, V: np.ndarray, omega: float) -> np.ndarray:
        t0 = time.perf_counter()
        W = self.op.apply_symmetrized(V, omega)
        dur = time.perf_counter() - t0
        self.breakdown["chi0_apply"] += dur
        self._elapsed += dur
        return W

    def close(self) -> None:
        self.op.close()


class SimulatedScheduler(Scheduler, _SliceAssignment):
    """Simulated-MPI execution: real per-rank work, virtual-clock charges.

    Behaviourally identical to the pre-seam driver: each rank's column
    slice is *actually executed* sequentially and its measured wall time
    charged to that rank's virtual clock; ScaLAPACK phases and collectives
    are charged from the Fig. 5-calibrated cost models.
    """

    backend = "simulated"
    time_domain = "virtual"

    def __init__(self, chi0op: Chi0Operator, n_ranks: int, width: int,
                 machine: MachineProfile,
                 rank_faults: dict[int, int] | None = None) -> None:
        super().__init__(chi0op, n_ranks)
        self.machine = machine
        self.rank_faults = dict(rank_faults or {})
        self.clocks = VirtualClocks(n_ranks, tracer=get_tracer())
        self.init_assignment(BlockColumnDistribution(width, n_ranks))
        self.last_apply_per_rank: np.ndarray | None = None

    def start_point(self, k: int) -> None:
        for r in sorted(r for r, kf in self.rank_faults.items()
                        if kf == k and r in self.assignment):
            self.fail_rank(r, k, domain="virtual")

    def apply(self, V: np.ndarray, omega: float) -> np.ndarray:
        """One distributed symmetrized apply; charges per-rank clocks."""
        W = np.empty_like(V)
        durations = np.zeros(self.n_ranks)
        recorder = get_recorder()
        recycler = self.op.recycler
        for r, slices in self.assignment.items():
            t0 = time.perf_counter()
            # Telemetry records from this rank's solves carry its rank tag,
            # so per-rank convergence behaviour stays separable post-merge.
            with recorder.rank_scope(r):
                for sl in slices:
                    # The assignment partitions the full block width; clamp
                    # to the operand (the SSA guard probes single columns).
                    sl = slice(sl.start, min(sl.stop, V.shape[1]))
                    if sl.stop <= sl.start:
                        continue
                    if recycler is not None:
                        # Each rank solves a disjoint column slice of the same
                        # block; scope the cache to global column offsets so
                        # full-width entries assemble coherently across ranks.
                        with recycler.columns(sl.start, sl.stop):
                            W[:, sl] = self.op.apply_symmetrized(V[:, sl], omega)
                    else:
                        W[:, sl] = self.op.apply_symmetrized(V[:, sl], omega)
            durations[r] = time.perf_counter() - t0
            self.clocks.advance(r, durations[r], label="chi0_apply")
        self.last_apply_per_rank = durations
        self.per_rank_chi0 += durations
        self.breakdown["chi0_apply"] += float(durations.max())
        return W

    @property
    def elapsed(self) -> float:
        return self.clocks.elapsed

    def charge_rayleigh_ritz(self, n_d: int, m: int, t_mm_rot: float,
                             t_eig: float) -> None:
        # Simulated charges: redistribute V and W to block-cyclic, run the
        # parallel matmults and eigensolve, redistribute back.
        p = self.n_ranks
        redist = 2.0 * redistribution_time(
            self.machine, block_cyclic_redistribution_bytes(n_d, 2 * m), p
        )
        mm = matmult_parallel_time(self.machine, t_mm_rot, p)
        eig = eigensolve_parallel_time(self.machine, t_eig, p)
        self.breakdown["matmult"] += mm + redist
        self.breakdown["eigensolve"] += eig
        self.clocks.synchronize(redist, label="redistribute")
        self.clocks.advance_all(mm, label="matmult")
        self.clocks.advance_all(eig, label="eigensolve")

    def charge_error_eval(self) -> None:
        """Eq. 7: one more operator application plus a scalar allreduce.

        The multiplication's cost is charged from the per-rank durations
        just measured for the identical product (post-rotation ``W`` *is*
        that product), so no redundant execution is needed.
        """
        durations = self.last_apply_per_rank
        if durations is not None:
            for r in range(self.n_ranks):
                self.clocks.advance(r, float(durations[r]), label="eval_error")
            self.breakdown["eval_error"] += float(durations.max())
        comm = allreduce_time(self.machine, 8.0, self.n_ranks)
        self.clocks.synchronize(comm, label="allreduce")

    def report(self) -> dict:
        return {
            "simulated_walltime": self.clocks.elapsed,
            "breakdown": dict(self.breakdown),
            "comm_seconds": self.clocks.comm_seconds,
            "imbalance_seconds": self.clocks.imbalance_seconds,
            "per_rank_chi0_seconds": self.per_rank_chi0.copy(),
            "n_rank_failures": self.n_rank_failures,
        }


def make_scheduler(
    backend: str,
    chi0op: Chi0Operator,
    *,
    n_ranks: int = 1,
    width: int = 1,
    machine: MachineProfile | None = None,
    rank_faults: dict[int, int] | None = None,
    fault_hook=None,
) -> Scheduler:
    """Build the scheduler for ``backend``.

    ``width`` is the distributed column count (the driver's ``n_eig``);
    ``serial`` and ``process`` ignore ``rank_faults`` (the driver validates
    they were not requested); ``spmd`` turns them into real worker deaths.
    """
    if backend == "serial":
        return SerialScheduler(chi0op)
    if backend == "simulated":
        return SimulatedScheduler(chi0op, n_ranks, width, machine,
                                  rank_faults=rank_faults)
    if backend == "process":
        return ProcessPoolScheduler(chi0op)
    if backend == "spmd":
        from repro.parallel.spmd import SpmdScheduler

        return SpmdScheduler(chi0op, n_ranks, width,
                             rank_faults=rank_faults, fault_hook=fault_hook)
    raise ValueError(
        f"unknown backend {backend!r} "
        f"(expected serial / simulated / process / spmd)"
    )
