"""Real shared-memory parallel backend for Sternheimer solves.

The simulated-MPI runtime reproduces the paper's *scaling studies*; this
module provides actual wall-clock speedup on one machine by fanning the
``n_s`` independent Sternheimer block systems of each chi0 application out
over a thread pool (numpy's BLAS releases the GIL in the dense kernels
that dominate block COCG).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.sternheimer import Chi0Operator


class ThreadedChi0Operator(Chi0Operator):
    """Drop-in ``Chi0Operator`` parallelizing over occupied orbitals.

    Parameters
    ----------
    n_workers:
        Thread count (defaults to ``min(n_s, os.cpu_count())``).

    All other parameters follow :class:`repro.core.sternheimer.Chi0Operator`.
    Statistics are aggregated with a lock-free per-task pattern: each task
    records into its own ``SternheimerStats`` which are merged afterwards,
    so totals are deterministic even under concurrency. Convergence
    telemetry needs no such merging here: all worker threads share the one
    active ``ConvergenceRecorder``, whose ring/counter updates are
    lock-guarded and whose (orbital, ω) scopes are thread-local, so
    concurrent orbitals cannot cross-label each other's records.
    """

    def __init__(self, *args, n_workers: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        import os

        if n_workers is None:
            n_workers = min(self.n_occupied, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)

    def apply_chi0(self, v: np.ndarray, omega: float) -> np.ndarray:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        squeeze = False
        V = np.asarray(v, dtype=float)
        if V.ndim == 1:
            V = V[:, None]
            squeeze = True
        if V.shape[0] != self.n_points:
            raise ValueError(f"operand rows {V.shape[0]} != n_d {self.n_points}")

        from repro.core.sternheimer import SternheimerStats

        def task(j: int):
            # Give each task an isolated stats sink by temporarily swapping;
            # the base class records into self.stats, so run on a clone.
            worker = Chi0Operator.__new__(Chi0Operator)
            worker.__dict__.update(self.__dict__)
            worker.stats = SternheimerStats()
            y = worker._solve_orbital(j, V, omega)
            return j, y, worker.stats

        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        if self.n_workers == 1:
            results = [task(j) for j in range(self.n_occupied)]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                results = list(pool.map(task, range(self.n_occupied)))
        for j, y, stats in sorted(results, key=lambda r: r[0]):
            acc += self.psi[:, j : j + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out
