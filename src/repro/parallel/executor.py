"""Real shared-memory parallel backend for Sternheimer solves.

The simulated-MPI runtime reproduces the paper's *scaling studies*; this
module provides actual wall-clock speedup on one machine by fanning the
``n_s`` independent Sternheimer block systems of each chi0 application out
over a thread pool (numpy's BLAS releases the GIL in the dense kernels
that dominate block COCG).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.sternheimer import Chi0Operator


class ThreadedChi0Operator(Chi0Operator):
    """Drop-in ``Chi0Operator`` parallelizing over occupied orbitals.

    Parameters
    ----------
    n_workers:
        Thread count (defaults to ``min(n_s, os.cpu_count())``).

    All other parameters follow :class:`repro.core.sternheimer.Chi0Operator`.
    Statistics are aggregated with a lock-free per-task pattern: each task
    records into its own ``SternheimerStats`` which are merged afterwards,
    so totals are deterministic even under concurrency. Convergence
    telemetry needs no such merging here: all worker threads share the one
    active ``ConvergenceRecorder``, whose ring/counter updates are
    lock-guarded and whose (orbital, ω) scopes are thread-local, so
    concurrent orbitals cannot cross-label each other's records.
    """

    def __init__(self, *args, n_workers: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        import os

        if n_workers is None:
            n_workers = min(self.n_occupied, os.cpu_count() or 1)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)

    def apply_chi0(self, v: np.ndarray, omega: float) -> np.ndarray:
        if omega <= 0:
            raise ValueError(f"omega must be positive (got {omega})")
        squeeze = False
        V = np.asarray(v, dtype=float)
        if V.ndim == 1:
            V = V[:, None]
            squeeze = True
        if V.shape[0] != self.n_points:
            raise ValueError(f"operand rows {V.shape[0]} != n_d {self.n_points}")

        from repro.core.sternheimer import SternheimerStats

        if self.use_batched:
            return self._apply_chi0_batched(V, omega, squeeze)

        def task(j: int):
            # Give each task an isolated stats sink by temporarily swapping;
            # the base class records into self.stats, so run on a clone.
            worker = Chi0Operator.__new__(Chi0Operator)
            worker.__dict__.update(self.__dict__)
            worker.stats = SternheimerStats()
            y = worker._solve_orbital(j, V, omega)
            return j, y, worker.stats

        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        if self.n_workers == 1:
            results = [task(j) for j in range(self.n_occupied)]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                results = list(pool.map(task, range(self.n_occupied)))
        for j, y, stats in sorted(results, key=lambda r: r[0]):
            acc += self.psi[:, j : j + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out

    def _apply_chi0_batched(self, V: np.ndarray, omega: float,
                            squeeze: bool) -> np.ndarray:
        """Batched route: contiguous orbital groups, one fused solve each.

        With fewer workers than orbitals each group fuses several orbitals
        into one wide solve, keeping the shared-H-apply advantage inside a
        group while groups run concurrently.
        """
        from repro.core.sternheimer import SternheimerStats

        n_groups = max(1, min(self.n_workers, self.n_occupied))
        groups = [g for g in np.array_split(np.arange(self.n_occupied), n_groups)
                  if g.size]

        def task(group: np.ndarray):
            worker = Chi0Operator.__new__(Chi0Operator)
            worker.__dict__.update(self.__dict__)
            worker.stats = SternheimerStats()
            solved = worker._solve_orbitals_batched([int(j) for j in group],
                                                    V, omega)
            return group, solved, worker.stats

        acc = np.zeros((self.n_points, V.shape[1]), dtype=complex)
        if len(groups) == 1 or self.n_workers == 1:
            results = [task(g) for g in groups]
        else:
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                results = list(pool.map(task, groups))
        for group, solved, stats in sorted(results, key=lambda r: int(r[0][0])):
            for j in group:
                y, _converged = solved[int(j)]
                acc += self.psi[:, int(j) : int(j) + 1] * y
            self.stats.merge(stats)
        out = 4.0 * acc.real
        return out[:, 0] if squeeze else out
