"""Manager-worker work distribution — the paper's Section V future work.

The paper's static block-column distribution leaves residual load imbalance
because individual right-hand sides of the same Sternheimer system converge
at different rates; it proposes a transition to a manager-worker model.
This module simulates that transition: every (orbital, column-chunk) solve
of one chi0 application is executed once and timed, then the measured item
durations are scheduled onto ``p`` virtual workers both ways:

* **static** — the paper's production layout: contiguous column blocks per
  rank, every rank solving all ``n_s`` orbitals for its own columns;
* **dynamic** — greedy list scheduling (optionally longest-processing-time
  first), the natural manager-worker policy.

The comparison quantifies how much walltime the future-work scheduler would
recover.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.sternheimer import Chi0Operator
from repro.obs.tracer import get_tracer
from repro.parallel.distribution import BlockColumnDistribution


@dataclass(frozen=True)
class WorkItem:
    """One Sternheimer block solve: orbital ``j`` applied to a column chunk."""

    orbital: int
    columns: tuple[int, int]  # [start, stop)
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("item duration must be non-negative")
        if self.columns[1] <= self.columns[0]:
            raise ValueError("empty column chunk")


def list_schedule_makespan(durations, p: int, lpt: bool = True) -> float:
    """Makespan of greedy list scheduling of ``durations`` on ``p`` workers.

    ``lpt=True`` sorts longest-first (Graham's LPT rule, within 4/3 of
    optimal); ``lpt=False`` keeps arrival order (plain FIFO manager-worker).
    """
    durations = [float(d) for d in durations]
    if p < 1:
        raise ValueError("p must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    if not durations:
        return 0.0
    if lpt:
        durations = sorted(durations, reverse=True)
    heap = [0.0] * p
    heapq.heapify(heap)
    for d in durations:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + d)
    return max(heap)


def replay_schedule(items: list[WorkItem], p: int, tracer=None,
                    lpt: bool = True) -> float:
    """Greedy list-schedule ``items`` on ``p`` workers, emitting the timeline.

    Reconstructs the exact assignment :func:`list_schedule_makespan` would
    produce and records each item as a virtual-time span on its worker's
    rank (``domain="virtual"``), so the manager-worker schedule can be
    inspected in the Chrome trace viewer. Returns the makespan. ``tracer``
    defaults to the active tracer; with tracing disabled this is just a
    makespan computation.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    tracer = tracer if tracer is not None else get_tracer()
    order = sorted(items, key=lambda it: it.seconds, reverse=True) if lpt else list(items)
    # (finish_time, worker) heap; ties broken by worker id for determinism.
    heap = [(0.0, w) for w in range(p)]
    heapq.heapify(heap)
    for item in order:
        t, w = heapq.heappop(heap)
        if tracer.enabled and item.seconds > 0:
            tracer.record("work_item", t, duration=item.seconds, rank=w,
                          domain="virtual", orbital=item.orbital,
                          columns=item.columns)
        heapq.heappush(heap, (t + item.seconds, w))
    return max(t for t, _ in heap)


def static_block_column_makespan(items: list[WorkItem], n_cols: int, p: int) -> float:
    """Makespan of the paper's static distribution for the same items.

    Each item is charged to the rank owning its columns (items never span
    owners when produced by :class:`Chi0WorkloadProfiler` with chunk sizes
    dividing the ownership blocks; spanning items are charged to the owner
    of their first column, a second-order effect).
    """
    dist = BlockColumnDistribution(n_cols, p)
    loads = np.zeros(p)
    for item in items:
        loads[dist.owner_of(item.columns[0])] += item.seconds
    return float(loads.max())


@dataclass
class ScheduleComparison:
    """Outcome of the static-vs-manager-worker comparison."""

    static_makespan: float
    dynamic_makespan: float
    dynamic_fifo_makespan: float
    ideal_makespan: float  # sum / p: perfect balance, no scheduling limits
    n_items: int

    @property
    def improvement(self) -> float:
        """Fractional walltime recovered by the manager-worker model."""
        if self.static_makespan == 0.0:
            return 0.0
        return 1.0 - self.dynamic_makespan / self.static_makespan


class Chi0WorkloadProfiler:
    """Measures per-item Sternheimer durations for scheduling studies.

    Executes each (orbital, column-chunk) block solve of one chi0
    application exactly once with real timing, producing the
    :class:`WorkItem` list both schedulers consume.
    """

    def __init__(self, chi0_operator: Chi0Operator, chunk: int = 4) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.op = chi0_operator
        self.chunk = int(chunk)

    def measure(self, v: np.ndarray, omega: float) -> list[WorkItem]:
        V = np.asarray(v, dtype=float)
        if V.ndim != 2 or V.shape[0] != self.op.n_points:
            raise ValueError(f"expected (n_d, n_v) block, got {V.shape}")
        items: list[WorkItem] = []
        n_v = V.shape[1]
        tracer = get_tracer()
        for j in range(self.op.n_occupied):
            for start in range(0, n_v, self.chunk):
                stop = min(start + self.chunk, n_v)
                with tracer.span("work_item", orbital=j, columns=(start, stop)):
                    t0 = time.perf_counter()
                    self.op._solve_orbital(j, V[:, start:stop], omega)
                items.append(WorkItem(j, (start, stop), time.perf_counter() - t0))
        return items

    def compare_schedules(self, v: np.ndarray, omega: float, p: int) -> ScheduleComparison:
        """Measure once, then schedule statically and dynamically on ``p``."""
        V = np.asarray(v, dtype=float)
        items = self.measure(V, omega)
        durations = [it.seconds for it in items]
        total = sum(durations)
        return ScheduleComparison(
            static_makespan=static_block_column_makespan(items, V.shape[1], p),
            dynamic_makespan=list_schedule_makespan(durations, p, lpt=True),
            dynamic_fifo_makespan=list_schedule_makespan(durations, p, lpt=False),
            ideal_makespan=total / p,
            n_items=len(items),
        )
