"""Manager-worker work distribution — the paper's Section V future work.

The paper's static block-column distribution leaves residual load imbalance
because individual right-hand sides of the same Sternheimer system converge
at different rates; it proposes a transition to a manager-worker model.
This module simulates that transition: every (orbital, column-chunk) solve
of one chi0 application is executed once and timed, then the measured item
durations are scheduled onto ``p`` virtual workers both ways:

* **static** — the paper's production layout: contiguous column blocks per
  rank, every rank solving all ``n_s`` orbitals for its own columns;
* **dynamic** — greedy list scheduling (optionally longest-processing-time
  first), the natural manager-worker policy.

The comparison quantifies how much walltime the future-work scheduler would
recover.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.core.sternheimer import Chi0Operator
from repro.obs.tracer import get_tracer
from repro.parallel.distribution import BlockColumnDistribution


@dataclass(frozen=True)
class WorkItem:
    """One Sternheimer block solve: orbital ``j`` applied to a column chunk."""

    orbital: int
    columns: tuple[int, int]  # [start, stop)
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("item duration must be non-negative")
        if self.columns[1] <= self.columns[0]:
            raise ValueError("empty column chunk")


def list_schedule_makespan(durations, p: int, lpt: bool = True) -> float:
    """Makespan of greedy list scheduling of ``durations`` on ``p`` workers.

    ``lpt=True`` sorts longest-first (Graham's LPT rule, within 4/3 of
    optimal); ``lpt=False`` keeps arrival order (plain FIFO manager-worker).
    """
    durations = [float(d) for d in durations]
    if p < 1:
        raise ValueError("p must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    if not durations:
        return 0.0
    if lpt:
        durations = sorted(durations, reverse=True)
    heap = [0.0] * p
    heapq.heapify(heap)
    for d in durations:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + d)
    return max(heap)


def replay_schedule(items: list[WorkItem], p: int, tracer=None,
                    lpt: bool = True) -> float:
    """Greedy list-schedule ``items`` on ``p`` workers, emitting the timeline.

    Reconstructs the exact assignment :func:`list_schedule_makespan` would
    produce and records each item as a virtual-time span on its worker's
    rank (``domain="virtual"``), so the manager-worker schedule can be
    inspected in the Chrome trace viewer. Returns the makespan. ``tracer``
    defaults to the active tracer; with tracing disabled this is just a
    makespan computation.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    tracer = tracer if tracer is not None else get_tracer()
    order = sorted(items, key=lambda it: it.seconds, reverse=True) if lpt else list(items)
    # (finish_time, worker) heap; ties broken by worker id for determinism.
    heap = [(0.0, w) for w in range(p)]
    heapq.heapify(heap)
    for item in order:
        t, w = heapq.heappop(heap)
        if tracer.enabled and item.seconds > 0:
            tracer.record("work_item", t, duration=item.seconds, rank=w,
                          domain="virtual", orbital=item.orbital,
                          columns=item.columns)
        heapq.heappush(heap, (t + item.seconds, w))
    return max(t for t, _ in heap)


@dataclass(frozen=True)
class WorkerFailure:
    """A simulated worker death: worker ``worker`` dies at virtual ``at_time``.

    Any item in flight at the failure instant is lost (its partial work is
    charged to the dead worker's timeline) and must be reassigned.
    """

    worker: int
    at_time: float

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError("worker must be non-negative")
        if self.at_time < 0:
            raise ValueError("failure time must be non-negative")


@dataclass
class RecoveryReplay:
    """Outcome of :func:`replay_schedule_with_recovery`."""

    makespan: float
    completed: int
    skipped: list[WorkItem]
    n_reassigned: int
    lost_seconds: float
    n_worker_failures: int
    retry_counts: dict[tuple[int, tuple[int, int]], int]

    @property
    def degraded(self) -> bool:
        """True when work had to be dropped (all retries exhausted or no
        workers left) — callers must account an error bound for it."""
        return bool(self.skipped)


def replay_schedule_with_recovery(
    items: list[WorkItem],
    p: int,
    failures: list[WorkerFailure] | tuple[WorkerFailure, ...] = (),
    max_retries: int = 3,
    lpt: bool = True,
    tracer=None,
) -> RecoveryReplay:
    """Manager-worker schedule under worker failures, with reassignment.

    Extends :func:`replay_schedule` with the fault model the manager-worker
    transition needs in production: a worker that dies mid-item loses that
    item's partial work; the manager reassigns the item to the next free
    worker, at most ``max_retries`` times per item, after which the item is
    *skipped* (graceful degradation — the caller accounts an error bound
    instead of crashing). Dead workers take no further work; if every
    worker dies, all remaining items are skipped.

    Emits the same virtual-timeline spans as :func:`replay_schedule`
    (``work_item``, plus ``work_item_lost`` for in-flight losses and
    ``worker_failure`` instants), so recovery is visible in the Chrome
    trace. Returns a :class:`RecoveryReplay`.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if max_retries < 0:
        raise ValueError("max_retries must be non-negative")
    tracer = tracer if tracer is not None else get_tracer()
    fail_at: dict[int, float] = {}
    for f in failures:
        if f.worker >= p:
            raise ValueError(f"failure names worker {f.worker} but p = {p}")
        fail_at[f.worker] = min(f.at_time, fail_at.get(f.worker, np.inf))

    order = sorted(items, key=lambda it: it.seconds, reverse=True) if lpt else list(items)
    queue = list(order)
    heap = [(0.0, w) for w in range(p)]
    heapq.heapify(heap)

    def _key(item: WorkItem) -> tuple[int, tuple[int, int]]:
        return (item.orbital, item.columns)

    retry_counts: dict[tuple[int, tuple[int, int]], int] = {}
    skipped: list[WorkItem] = []
    completed = 0
    n_reassigned = 0
    lost_seconds = 0.0
    failed_workers: set[int] = set()
    finish_times = [0.0] * p

    def _mark_dead(w: int, t: float) -> None:
        failed_workers.add(w)
        finish_times[w] = max(finish_times[w], t)
        if tracer.enabled:
            tracer.event("worker_failure", rank=w, domain="virtual", at_time=t)

    while queue:
        if not heap:
            skipped.extend(queue)  # every worker is dead
            queue.clear()
            break
        t, w = heapq.heappop(heap)
        died_at = fail_at.get(w, np.inf)
        if t >= died_at:
            _mark_dead(w, t)
            continue
        item = queue.pop(0)
        end = t + item.seconds
        if end > died_at:
            # The worker dies mid-item: partial work is lost, the item is
            # reassigned (or skipped once its retry budget is spent).
            lost = died_at - t
            lost_seconds += lost
            if tracer.enabled and lost > 0:
                tracer.record("work_item_lost", t, duration=lost, rank=w,
                              domain="virtual", orbital=item.orbital,
                              columns=item.columns)
            _mark_dead(w, died_at)
            key = _key(item)
            retry_counts[key] = retry_counts.get(key, 0) + 1
            if retry_counts[key] > max_retries:
                skipped.append(item)
            else:
                n_reassigned += 1
                queue.append(item)
            continue
        if tracer.enabled and item.seconds > 0:
            tracer.record("work_item", t, duration=item.seconds, rank=w,
                          domain="virtual", orbital=item.orbital,
                          columns=item.columns,
                          retry=retry_counts.get(_key(item), 0))
        completed += 1
        finish_times[w] = end
        heapq.heappush(heap, (end, w))

    for t, w in heap:
        finish_times[w] = max(finish_times[w], t)
    return RecoveryReplay(
        makespan=max(finish_times) if finish_times else 0.0,
        completed=completed,
        skipped=skipped,
        n_reassigned=n_reassigned,
        lost_seconds=lost_seconds,
        n_worker_failures=len(failed_workers),
        retry_counts=retry_counts,
    )


def static_block_column_makespan(items: list[WorkItem], n_cols: int, p: int) -> float:
    """Makespan of the paper's static distribution for the same items.

    Each item is charged to the rank owning its columns (items never span
    owners when produced by :class:`Chi0WorkloadProfiler` with chunk sizes
    dividing the ownership blocks; spanning items are charged to the owner
    of their first column, a second-order effect).
    """
    dist = BlockColumnDistribution(n_cols, p)
    loads = np.zeros(p)
    for item in items:
        loads[dist.owner_of(item.columns[0])] += item.seconds
    return float(loads.max())


@dataclass
class ScheduleComparison:
    """Outcome of the static-vs-manager-worker comparison."""

    static_makespan: float
    dynamic_makespan: float
    dynamic_fifo_makespan: float
    ideal_makespan: float  # sum / p: perfect balance, no scheduling limits
    n_items: int

    @property
    def improvement(self) -> float:
        """Fractional walltime recovered by the manager-worker model."""
        if self.static_makespan == 0.0:
            return 0.0
        return 1.0 - self.dynamic_makespan / self.static_makespan


class Chi0WorkloadProfiler:
    """Measures per-item Sternheimer durations for scheduling studies.

    Executes each (orbital, column-chunk) block solve of one chi0
    application exactly once with real timing, producing the
    :class:`WorkItem` list both schedulers consume.
    """

    def __init__(self, chi0_operator: Chi0Operator, chunk: int = 4) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.op = chi0_operator
        self.chunk = int(chunk)

    def measure(self, v: np.ndarray, omega: float) -> list[WorkItem]:
        V = np.asarray(v, dtype=float)
        if V.ndim != 2 or V.shape[0] != self.op.n_points:
            raise ValueError(f"expected (n_d, n_v) block, got {V.shape}")
        items: list[WorkItem] = []
        n_v = V.shape[1]
        tracer = get_tracer()
        for j in range(self.op.n_occupied):
            for start in range(0, n_v, self.chunk):
                stop = min(start + self.chunk, n_v)
                with tracer.span("work_item", orbital=j, columns=(start, stop)):
                    t0 = time.perf_counter()
                    self.op._solve_orbital(j, V[:, start:stop], omega)
                items.append(WorkItem(j, (start, stop), time.perf_counter() - t0))
        return items

    def compare_schedules(self, v: np.ndarray, omega: float, p: int) -> ScheduleComparison:
        """Measure once, then schedule statically and dynamically on ``p``."""
        V = np.asarray(v, dtype=float)
        items = self.measure(V, omega)
        durations = [it.seconds for it in items]
        total = sum(durations)
        return ScheduleComparison(
            static_makespan=static_block_column_makespan(items, V.shape[1], p),
            dynamic_makespan=list_schedule_makespan(durations, p, lpt=True),
            dynamic_fifo_makespan=list_schedule_makespan(durations, p, lpt=False),
            ideal_makespan=total / p,
            n_items=len(items),
        )
