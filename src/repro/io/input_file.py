"""Parser for the paper artifact's ``.rpa`` input format.

The SC 2024 artifact drives its RPA code with small keyword files, e.g.
``Si8.rpa``::

    N_NUCHI_EIGS: 768
    N_OMEGA: 8
    TOL_EIG: 4e-3 2e-3 5e-4 5e-4 5e-4 5e-4 5e-4 5e-4
    TOL_STERN_RES: 1e-2
    MAXIT_FILTERING: 10
    CHEB_DEGREE_RPA: 2
    FLAG_PQ_OPERATOR: 0
    FLAG_COCGINITIAL: 1

This module maps that format onto :class:`repro.config.RPAConfig` so the
artifact's input files drive this reproduction unchanged.
"""

from __future__ import annotations

import pathlib

from repro.config import RPAConfig

#: Keywords understood by the artifact's parser, mapped to handling rules.
_KNOWN_KEYS = {
    "N_NUCHI_EIGS",
    "N_OMEGA",
    "TOL_EIG",
    "TOL_STERN_RES",
    "MAXIT_FILTERING",
    "CHEB_DEGREE_RPA",
    "FLAG_PQ_OPERATOR",
    "FLAG_COCGINITIAL",
}


def parse_rpa_input(text: str) -> dict[str, list[str]]:
    """Parse the raw keyword file into ``{KEY: [tokens]}``.

    Lines are ``KEY: value [value ...]``; ``#`` comments and blank lines are
    ignored; unknown keys raise so typos do not silently change runs.
    """
    out: dict[str, list[str]] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ":" not in line:
            raise ValueError(f"line {lineno}: expected 'KEY: value', got {raw!r}")
        key, _, rest = line.partition(":")
        key = key.strip().upper()
        if key not in _KNOWN_KEYS:
            raise ValueError(f"line {lineno}: unknown keyword {key!r}")
        tokens = rest.split()
        if not tokens:
            raise ValueError(f"line {lineno}: keyword {key!r} has no value")
        if key in out:
            raise ValueError(f"line {lineno}: duplicate keyword {key!r}")
        out[key] = tokens
    return out


def load_rpa_config(path: str | pathlib.Path | None = None, text: str | None = None,
                    **overrides) -> RPAConfig:
    """Build an :class:`RPAConfig` from a ``.rpa`` file (or its text).

    Parameters
    ----------
    path / text:
        Exactly one source of the keyword file.
    overrides:
        Extra :class:`RPAConfig` fields (e.g. ``seed``) applied on top.

    Notes
    -----
    * ``FLAG_COCGINITIAL`` maps to ``use_galerkin_guess``.
    * ``FLAG_PQ_OPERATOR`` selects the artifact's alternative operator
      form; only the default ``0`` is supported (asserted).
    """
    if (path is None) == (text is None):
        raise ValueError("provide exactly one of path or text")
    if path is not None:
        text = pathlib.Path(path).read_text()
    fields = parse_rpa_input(text)

    missing = {"N_NUCHI_EIGS"} - set(fields)
    if missing:
        raise ValueError(f"missing required keyword(s): {sorted(missing)}")

    n_eig = int(fields["N_NUCHI_EIGS"][0])
    n_omega = int(fields.get("N_OMEGA", ["8"])[0])
    kwargs = dict(
        n_eig=n_eig,
        n_quadrature=n_omega,
        tol_subspace=tuple(float(t) for t in fields.get(
            "TOL_EIG", ["4e-3", "2e-3", "5e-4"])),
        tol_sternheimer=float(fields.get("TOL_STERN_RES", ["1e-2"])[0]),
        max_filter_iterations=int(fields.get("MAXIT_FILTERING", ["10"])[0]),
        filter_degree=int(fields.get("CHEB_DEGREE_RPA", ["2"])[0]),
        use_galerkin_guess=bool(int(fields.get("FLAG_COCGINITIAL", ["1"])[0])),
    )
    if int(fields.get("FLAG_PQ_OPERATOR", ["0"])[0]) != 0:
        raise NotImplementedError(
            "FLAG_PQ_OPERATOR != 0 (the artifact's alternative operator form) "
            "is not implemented"
        )
    kwargs.update(overrides)
    return RPAConfig(**kwargs)


def dump_rpa_config(config: RPAConfig) -> str:
    """Serialize a config back to the artifact's keyword format."""
    tols = " ".join(f"{t:g}" for t in config.tol_subspace)
    return (
        f"N_NUCHI_EIGS: {config.n_eig}\n"
        f"N_OMEGA: {config.n_quadrature}\n"
        f"TOL_EIG: {tols}\n"
        f"TOL_STERN_RES: {config.tol_sternheimer:g}\n"
        f"MAXIT_FILTERING: {config.max_filter_iterations}\n"
        f"CHEB_DEGREE_RPA: {config.filter_degree}\n"
        f"FLAG_PQ_OPERATOR: 0\n"
        f"FLAG_COCGINITIAL: {int(config.use_galerkin_guess)}\n"
    )
