"""Artifact-compatible I/O: the .rpa input format and .out log format."""

from repro.io.input_file import dump_rpa_config, load_rpa_config, parse_rpa_input
from repro.io.output_file import estimate_memory_mb, format_output_log

__all__ = [
    "parse_rpa_input",
    "load_rpa_config",
    "dump_rpa_config",
    "format_output_log",
    "estimate_memory_mb",
]
