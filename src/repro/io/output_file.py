"""Writer for the artifact's ``.out`` log format.

Renders an :class:`repro.core.rpa_energy.RPAEnergyResult` in the structure
of the artifact's ``Si8.out``: a parallelization banner, one block per
(q-point, omega) pair with the per-filter-iteration table, the per-omega
energy terms, the total RPA correlation energy, and the walltime.
"""

from __future__ import annotations

import numpy as np

from repro.core.rpa_energy import RPAEnergyResult

_RULE = "*" * 66


def format_output_log(result: RPAEnergyResult, n_ranks: int = 1,
                      memory_mb: float | None = None) -> str:
    """Render the artifact-style output log as a string."""
    lines: list[str] = []
    lines.append(_RULE)
    lines.append("                    RPA Parallelization")
    lines.append(_RULE)
    lines.append(f"NP_NUCHI_EIGS_PARAL_RPA: {n_ranks}")
    lines.append("NP_SPIN_PARAL_RPA: 1")
    lines.append("NP_KPOINT_PARAL_RPA: 1")
    lines.append("NP_BAND_PARAL_RPA: 1")
    lines.append(_RULE)
    if memory_mb is not None:
        lines.append(f"Estimated memory usage in RPA calculation is {memory_mb:.2f} MB")
        lines.append(_RULE)

    quad = result.quadrature
    for p in result.points:
        lines.append(_RULE)
        lines.append("q-point 1 (reduced coords 0.000 0.000 0.000), weight 1.000")
        unit_pt = quad.unit_points[p.index - 1]
        unit_w = quad.unit_weights[p.index - 1]
        lines.append(
            f"omega {p.index} (value {p.omega:.3f}, 0~1 value {unit_pt:.3f}, "
            f"weight {unit_w:.3f})"
        )
        lines.append(
            "ncheb | ErpaTerm (Ha/atom) | First 2 eigs & Last 2 eigs of nu chi0 "
            "| eig Error | Timing (s)"
        )
        mu = p.eigenvalues
        lines.append(
            f" {p.filter_iterations:d}\t{p.energy_term / result.n_atoms: .3E}"
            f"\t{mu[0]: .5f} {mu[1]: .5f} ; {mu[-2]: .5f} {mu[-1]: .5f}"
            f"  {p.error:.3E}  {p.elapsed_seconds:.2f}"
        )

    lines.append(_RULE)
    lines.append("Energy terms in every (qpt, omega) pair (Ha)")
    lines.append("q-point 1")
    contributions = [
        f"omega {p.index}: {p.energy_contribution: .5E},"
        for p in result.points
    ]
    for start in range(0, len(contributions), 3):
        lines.append(" ".join(contributions[start:start + 3]))
    lines.append(
        f"Total RPA correlation energy: {result.energy: .5E} (Ha), "
        f"{result.energy_per_atom: .5E} (Ha/atom)"
    )
    lines.append(_RULE)
    lines.append("                        Timing info")
    lines.append(_RULE)
    for name in ("chi0_apply", "matmult", "eigensolve", "eval_error"):
        if name in result.timers.buckets:
            lines.append(f"{name:<12s}: {result.timers.get(name):10.3f} sec")
    lines.append(f"Total walltime : {result.elapsed_seconds:.3f} sec")
    return "\n".join(lines) + "\n"


def estimate_memory_mb(n_d: int, n_eig: int, n_s: int) -> float:
    """Rough RPA working-set estimate mirroring the artifact's banner.

    Dominated by the eigenvector block V and its operator image (real), one
    complex Sternheimer solution block per orbital solve, and the occupied
    orbitals.
    """
    if min(n_d, n_eig, n_s) < 1:
        raise ValueError("dimensions must be positive")
    doubles = (
        2.0 * n_d * n_eig          # V and A V
        + 6.0 * n_d * n_eig        # complex Y, W, P blocks (2 doubles each)
        + n_d * n_s                # occupied orbitals
    )
    return doubles * 8.0 / 2**20
