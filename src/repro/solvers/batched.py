"""Batched multi-orbital Sternheimer kernel (fused-apply COCG).

Every ``chi0(i omega) V`` application solves the ``n_s`` shifted systems

    (H - lambda_j I + i omega I) Y_j = B_j,    j = 1..n_s,

whose coefficient operators differ *only* by the scalar shift
``-lambda_j + i omega``. The per-orbital loop therefore wastes the
dominant cost of each iteration: the ``H`` apply (stencil sweep +
nonlocal-projector gemm) touches one orbital's columns at a time.

:class:`BatchedShiftedOperator` concatenates all right-hand-side blocks at
a quadrature point into one wide ``(n, n_s * n_v)`` matrix and performs a
*single* shared Hamiltonian application per Krylov iteration; the
per-orbital shifts commute with ``H`` (both are applied pointwise to each
column independently) so they reduce to one elementwise broadcast
``Y += X * shifts`` — a diagonal correction costing ``O(n C)`` next to the
``O((6r + 1) n C)`` stencil term that now runs at BLAS-3 width.

Because the shifts differ per column, coupling the columns through one
block-COCG recurrence would be wrong (the ``s x s`` recurrence matrices
assume a *common* operator). :func:`batched_cocg_solve` instead runs an
independent scalar COCG recurrence per column — per-column ``alpha``,
``beta``, residual and stopping test — advanced in lockstep so all columns
share each fused operator application. Columns that converge (or break
down / stagnate) are *masked out*: the active set is compressed so
finished columns drop out of the fused matvec without desynchronizing the
surviving recurrences, which never read any cross-column quantity.

A mixed-precision fast path (:func:`batched_cocg_ir_solve`) runs the COCG
iterations in complex64 and polishes with classical iterative refinement:
the residual is recomputed in float64, columns above tolerance get a
float32 correction solve on the (column-normalized) residual, and the loop
repeats until the *float64* true residual meets the requested tolerance.
Columns that stall or exhaust the refinement budget fall back to a full
float64 solve, so the result always satisfies the same gate as the cold
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.solvers.linear_operator import CountingOperator, as_operator

#: Iterations without any per-column residual improvement before a column
#: is declared stagnated (mirrors ``block_cocg._STAGNATION_WINDOW``).
_STAGNATION_WINDOW = 40

#: Default inner tolerance for the float32 correction solves. Single
#: precision bottoms out near 1e-6 relative residual; stopping well above
#: that keeps every inner iteration productive.
_IR_INNER_TOL = 1e-4

#: Default refinement-round budget before the float64 fallback engages.
_IR_MAX_REFINEMENTS = 8

#: A refinement round must shrink the worst remaining residual by at least
#: this factor, else the f32 solves have hit their precision floor and the
#: driver falls back to float64 immediately instead of burning the budget.
_IR_MIN_PROGRESS = 0.3


class BatchedShiftedOperator:
    """``X -> H X + X * diag(shifts)`` over a fused multi-orbital block.

    Parameters
    ----------
    base:
        The shared operator ``H`` — anything :func:`as_operator` accepts
        (the Hamiltonian, a dense/sparse matrix, a callable).
    shifts:
        Per-column complex shifts, length ``C = n_s * n_v``; column ``c``
        of an application receives ``base(X)[:, c] + shifts[c] * X[:, c]``.
    n:
        Dimension (required only for bare-callable bases).
    dtype:
        ``complex128`` (default) or ``complex64`` for the mixed-precision
        path (see :meth:`single_precision`).
    """

    def __init__(self, base, shifts: np.ndarray, n: int | None = None,
                 dtype=np.complex128) -> None:
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.complex128), np.dtype(np.complex64)):
            raise ValueError(f"dtype must be complex128 or complex64, got {self.dtype}")
        self.base = base
        self._op = as_operator(base, n)
        self.n = self._op.n
        shifts = np.asarray(shifts)
        if shifts.ndim != 1 or shifts.size == 0:
            raise ValueError(f"shifts must be a non-empty 1-D array, got shape {shifts.shape}")
        self.shifts = shifts.astype(self.dtype)
        self.n_columns = int(shifts.size)

    def apply(self, x: np.ndarray, cols: np.ndarray | None = None) -> np.ndarray:
        """One fused application to the columns indexed by ``cols``.

        ``cols`` selects which global shift belongs to each operand column
        (all of them, in order, when omitted) — this is what lets converged
        columns drop out of the matvec.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"operand must be (n, c), got shape {x.shape}")
        shifts = self.shifts if cols is None else self.shifts[cols]
        if x.shape[1] != shifts.size:
            raise ValueError(
                f"operand has {x.shape[1]} columns but {shifts.size} shifts were selected"
            )
        return self._op(x) + x * shifts

    def single_precision(self) -> "BatchedShiftedOperator":
        """A complex64 clone with a demoted base-operator kernel."""
        if self.dtype == np.dtype(np.complex64):
            return self
        return BatchedShiftedOperator(
            demote_operator(self.base, self.n), self.shifts, n=self.n,
            dtype=np.complex64,
        )


def demote_operator(base, n: int) -> Callable[[np.ndarray], np.ndarray]:
    """A float32-kernel apply for ``base`` (outputs complex64 on complex64).

    Hamiltonians get a rebuilt kernel — float32 FFT symbol or stencil
    weights, float32 local potential and nonlocal projectors — so every
    intermediate stays in single precision. Dense/sparse matrices are cast
    once. Anything else is wrapped with an output cast (correct, if not
    faster).
    """
    from repro.dft.hamiltonian import Hamiltonian

    if isinstance(base, Hamiltonian):
        return _demote_hamiltonian(base)
    if isinstance(base, np.ndarray):
        a32 = base.astype(np.complex64 if np.iscomplexobj(base) else np.float32)
        return lambda x: a32 @ x
    import scipy.sparse as sp

    if sp.issparse(base):
        a32 = base.astype(np.float32)
        return lambda x: a32 @ x
    if isinstance(base, CountingOperator):
        inner = base
        return lambda x: np.asarray(inner(x), dtype=np.complex64)
    apply_fn = base.apply if hasattr(base, "apply") and callable(base.apply) else base
    return lambda x: np.asarray(apply_fn(x), dtype=np.complex64)


def _demote_hamiltonian(h) -> Callable[[np.ndarray], np.ndarray]:
    """Single-precision ``H`` apply: f32 kinetic kernel + f32 potentials.

    numpy's promotion rules make this delicate: a float64 scalar or symbol
    times a complex64 block silently promotes to complex128, so every
    coefficient below is materialized as float32 before it meets the field.
    """
    grid = h.grid
    v32 = h.v_local.astype(np.float32)

    if getattr(h, "_fourier", None) is not None:
        import scipy.fft

        # The kinetic multiplier -0.5 * lambda(k), precomputed in float32;
        # scipy.fft preserves complex64 end to end.
        mult = (-0.5 * h._fourier.symbol).astype(np.float32)

        def kinetic(x: np.ndarray) -> np.ndarray:
            fld = grid.to_field(x)
            vhat = scipy.fft.fftn(fld, axes=(0, 1, 2))
            vhat *= mult[..., None] if fld.ndim == 4 else mult
            out = scipy.fft.ifftn(vhat, axes=(0, 1, 2), overwrite_x=True)
            return grid.to_vector(np.ascontiguousarray(out))
    else:
        from repro.grid.stencil import _shift_zero

        stencil = h._stencil
        radius = stencil.radius
        coeff = stencil.coefficients
        inv_h2 = stencil._inv_h2
        # -0.5 folded into each stencil weight, all f32 scalars.
        c0 = np.float32(-0.5 * coeff[0] * inv_h2.sum())
        ws = [
            [np.float32(-0.5 * coeff[m] * inv_h2[axis]) for m in range(radius + 1)]
            for axis in range(3)
        ]
        periodic = grid.bc == "periodic"

        def kinetic(x: np.ndarray) -> np.ndarray:
            fld = grid.to_field(x)
            out = c0 * fld
            for axis in range(3):
                for m in range(1, radius + 1):
                    w = ws[axis][m]
                    if periodic:
                        out += w * (np.roll(fld, m, axis=axis)
                                    + np.roll(fld, -m, axis=axis))
                    else:
                        out += w * _shift_zero(fld, m, axis)
                        out += w * _shift_zero(fld, -m, axis)
            return grid.to_vector(out)

    nl = h.nonlocal_part
    if nl is not None and nl.n_projectors:
        p32 = nl.projectors.astype(np.float32)
        pt32 = p32.T.tocsr()
        s32 = (nl.dv * nl.strengths).astype(np.float32)

        def nonlocal_apply(x: np.ndarray) -> np.ndarray:
            return p32 @ ((pt32 @ x) * s32[:, None])
    else:
        nonlocal_apply = None

    def apply(x: np.ndarray) -> np.ndarray:
        out = kinetic(x)
        out += v32[:, None] * x
        if nonlocal_apply is not None:
            out += nonlocal_apply(x)
        return np.asarray(out, dtype=np.complex64)

    return apply


@dataclass
class BatchedSolveResult:
    """Outcome of one batched multi-shift solve.

    All per-column arrays have length ``C`` (the full batch width), in the
    global column order of the operator — including columns the driver was
    given via a ``cols`` subset, which are reported at their subset
    positions.
    """

    solution: np.ndarray            # (n, C)
    converged: np.ndarray           # (C,) bool
    residual_norms: np.ndarray      # (C,) final per-column relative residual
    col_iterations: np.ndarray      # (C,) first tolerance crossing (-1: never)
    iterations: int                 # lockstep iterations performed
    n_batched_applies: int          # fused operator applications
    col_applies: np.ndarray         # (C,) per-column operator applications
    broken: np.ndarray              # (C,) bool: breakdown / stagnation
    residual_history: list[float] = field(default_factory=list)
    dtype: str = "float64"
    n_refinements: int = 0          # IR rounds performed (f32 path only)
    n_fallback_columns: int = 0     # columns polished by the f64 fallback

    @property
    def all_converged(self) -> bool:
        return bool(self.converged.all())

    @property
    def n_matvec(self) -> int:
        """Total column-applies (the accounting the equivalence suite pins)."""
        return int(self.col_applies.sum())

    @property
    def residual_norm(self) -> float:
        return float(self.residual_norms.max()) if self.residual_norms.size else 0.0

    @property
    def breakdown(self) -> bool:
        return bool(self.broken.any())


def _column_norms(block: np.ndarray) -> np.ndarray:
    """Per-column l2 norms without the |block| temporary."""
    return np.sqrt(np.einsum("ij,ij->j", block.conj(), block).real)


def batched_cocg_solve(
    op: BatchedShiftedOperator,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    preconditioner_groups: Sequence[tuple[np.ndarray, Callable]] = (),
    mask_converged: bool = True,
    cols: np.ndarray | None = None,
    stagnation_window: int = _STAGNATION_WINDOW,
) -> BatchedSolveResult:
    """Per-column COCG recurrences in lockstep over one fused operator.

    Parameters
    ----------
    op:
        The batched shifted operator (its dtype sets the working precision).
    b:
        Right-hand sides ``(n, C)``; column ``c`` belongs to global operator
        column ``cols[c]``.
    x0:
        Optional initial block guess.
    tol:
        Per-column relative residual tolerance (``||r_c|| <= tol ||b_c||``).
    preconditioner_groups:
        ``(global_column_indices, M)`` pairs; each ``M`` is applied to its
        group's residual columns every iteration (the Sternheimer layer
        groups columns by orbital so the selective shifted-Laplacian
        preconditioner keys off ``(lambda_j, omega)``).
    mask_converged:
        Compress converged columns out of the fused matvec (the default).
        ``False`` keeps every non-broken column iterating until all of them
        meet tolerance simultaneously — the mode the accounting identity
        ``batched_applies * C == sum(col_applies)`` is exact in.
    cols:
        Global operator column index per RHS column (``arange(C)`` when
        omitted).

    Notes
    -----
    Masking never freezes an unconverged column: a column leaves the active
    set only by crossing ``tol`` or by breakdown/stagnation (reported in
    ``broken``), so on exit ``converged | broken`` covers every column the
    iteration cap did not cut off.
    """
    b = np.asarray(b)
    if b.ndim != 2:
        raise ValueError(f"b must be (n, C), got shape {b.shape}")
    if tol <= 0:
        raise ValueError("tol must be positive")
    n, C = b.shape
    if op.n != n:
        raise ValueError(f"operator dim {op.n} != rhs rows {n}")
    if cols is None:
        if C != op.n_columns:
            raise ValueError(
                f"rhs has {C} columns but the operator carries "
                f"{op.n_columns} shifts (pass cols= for a subset)"
            )
        cols = np.arange(C)
    else:
        cols = np.asarray(cols, dtype=int)
        if cols.shape != (C,):
            raise ValueError(f"cols must have shape ({C},), got {cols.shape}")
    wdtype = op.dtype
    tiny = 1e-30 if wdtype == np.dtype(np.complex64) else 1e-300

    if x0 is None:
        X = np.zeros((n, C), dtype=wdtype)
    else:
        X = np.asarray(x0).astype(wdtype, copy=True)
        if X.shape != (n, C):
            raise ValueError(f"x0 shape {X.shape} != rhs shape {(n, C)}")

    b_norms = _column_norms(np.asarray(b, dtype=wdtype))
    converged = np.zeros(C, dtype=bool)
    broken = np.zeros(C, dtype=bool)
    col_iterations = np.full(C, -1, dtype=np.int64)
    col_applies = np.zeros(C, dtype=np.int64)
    residuals = np.full(C, np.inf)
    n_batched_applies = 0
    history: list[float] = []
    b_frob = float(np.linalg.norm(b_norms))

    zero = b_norms == 0.0
    converged[zero] = True
    col_iterations[zero] = 0
    residuals[zero] = 0.0
    X[:, zero] = 0.0

    groups = [(np.asarray(g, dtype=int), M) for g, M in preconditioner_groups]

    def precondition(Rblk: np.ndarray, active_global: np.ndarray) -> np.ndarray:
        if not groups:
            return Rblk
        Z = Rblk.copy()
        for gcols, M in groups:
            sel = np.flatnonzero(np.isin(active_global, gcols))
            if sel.size:
                Z[:, sel] = np.asarray(M(Rblk[:, sel])).astype(wdtype, copy=False)
        return Z

    def aggregate(res: np.ndarray) -> float:
        # Block-Frobenius relative residual over *all* columns (converged
        # ones contribute their frozen final residuals).
        if b_frob == 0.0:
            return 0.0
        return float(np.linalg.norm(res * b_norms)) / b_frob

    def result(iterations: int) -> BatchedSolveResult:
        return BatchedSolveResult(
            solution=X,
            converged=converged,
            residual_norms=np.where(np.isfinite(residuals), residuals, np.inf),
            col_iterations=col_iterations,
            iterations=iterations,
            n_batched_applies=n_batched_applies,
            col_applies=col_applies,
            broken=broken,
            residual_history=history,
            dtype="float32" if wdtype == np.dtype(np.complex64) else "float64",
        )

    idx = np.flatnonzero(~zero)
    if idx.size == 0:
        history.append(0.0)
        return result(0)

    R = np.asarray(b[:, idx]).astype(wdtype, copy=True)
    if x0 is not None:
        R -= op.apply(X[:, idx], cols[idx])
        n_batched_applies += 1
        col_applies[idx] += 1
    bn = b_norms[idx]
    rel = _column_norms(R) / bn
    residuals[idx] = rel
    history.append(aggregate(residuals))

    nonfin = ~np.isfinite(rel)
    conv_now = (rel <= tol) & ~nonfin
    col_iterations[idx[conv_now]] = 0
    broken[idx[nonfin]] = True
    if mask_converged:
        converged[idx[conv_now]] = True
        keep = ~(conv_now | nonfin)
    else:
        # Unmasked: converged columns keep iterating; the whole batch stops
        # only when every surviving column is at tolerance simultaneously.
        keep = ~nonfin
        if keep.any() and conv_now[keep].all():
            converged[idx[keep]] = True
            keep = np.zeros_like(keep)
    idx, R, bn, rel = idx[keep], R[:, keep], bn[keep], rel[keep]
    if idx.size == 0:
        return result(0)

    best_rel = rel.copy()
    since_improvement = np.zeros(idx.size, dtype=np.int64)
    Z = precondition(R, cols[idx])
    rho = np.einsum("ij,ij->j", R, Z)
    P = Z.copy() if Z is R else Z

    for it in range(1, max_iterations + 1):
        U = op.apply(P, cols[idx])
        n_batched_applies += 1
        col_applies[idx] += 1
        sigma = np.einsum("ij,ij->j", P, U)
        bad = ~np.isfinite(sigma) | (np.abs(sigma) < tiny)
        with np.errstate(all="ignore"):
            alpha = np.where(bad, 0.0, rho / np.where(bad, 1.0, sigma))
        X[:, idx] += P * alpha
        R -= U * alpha
        rel = _column_norms(R) / bn
        residuals[idx] = rel
        history.append(aggregate(residuals))

        nonfin = ~np.isfinite(rel)
        improved = (rel < best_rel) & ~nonfin
        since_improvement = np.where(improved, 0, since_improvement + 1)
        best_rel = np.where(improved, rel, best_rel)
        conv_now = (rel <= tol) & ~nonfin & ~bad
        brk_now = bad | nonfin | (since_improvement >= stagnation_window)
        newly_conv = conv_now & (col_iterations[idx] < 0)
        col_iterations[idx[newly_conv]] = it
        broken[idx[brk_now & ~conv_now]] = True

        if mask_converged:
            converged[idx[conv_now]] = True
            keep = ~(conv_now | brk_now)
        else:
            keep = ~(brk_now & ~conv_now)
            if keep.any() and conv_now[keep].all():
                # Every surviving column is at tolerance simultaneously.
                converged[idx[keep]] = True
                keep = np.zeros_like(keep)
        if not keep.all():
            idx, R, P, bn, rho = idx[keep], R[:, keep], P[:, keep], bn[keep], rho[keep]
            best_rel = best_rel[keep]
            since_improvement = since_improvement[keep]
        if idx.size == 0:
            return result(it)

        Z = precondition(R, cols[idx])
        rho_new = np.einsum("ij,ij->j", R, Z)
        bad_beta = ~np.isfinite(rho_new) | (np.abs(rho) < tiny)
        with np.errstate(all="ignore"):
            beta = np.where(bad_beta, 0.0, rho_new / np.where(bad_beta, 1.0, rho))
        if bad_beta.any():
            broken[idx[bad_beta]] = True
            keep = ~bad_beta
            idx, R, bn, rho_new, beta = (idx[keep], R[:, keep], bn[keep],
                                         rho_new[keep], beta[keep])
            Z, P = Z[:, keep], P[:, keep]
            best_rel = best_rel[keep]
            since_improvement = since_improvement[keep]
            if idx.size == 0:
                return result(it)
        P = Z + P * beta
        rho = rho_new

    if not mask_converged and idx.size:
        # Iteration cap in unmasked mode: columns sitting at tolerance are
        # converged even though the batch never stopped simultaneously.
        final_ok = np.isfinite(residuals[idx]) & (residuals[idx] <= tol)
        converged[idx[final_ok]] = True
    return result(max_iterations)


def batched_cocg_ir_solve(
    op: BatchedShiftedOperator,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    preconditioner_groups: Sequence[tuple[np.ndarray, Callable]] = (),
    inner_tol: float = _IR_INNER_TOL,
    max_refinements: int = _IR_MAX_REFINEMENTS,
    stagnation_window: int = _STAGNATION_WINDOW,
) -> BatchedSolveResult:
    """float32 batched COCG with float64 iterative-refinement polish.

    Classical iterative refinement: the defect ``R = B - A X`` is computed
    in float64 with the *exact* operator; each unconverged column gets a
    complex64 correction solve on its normalized defect (normalization
    keeps tiny late-round defects inside float32's dynamic range); the
    correction is accumulated into the float64 iterate. Rounds repeat until
    every column's float64 relative residual meets ``tol`` — the same true
    residual ``repro.verify`` recomputes — or the budget/progress guard
    trips, at which point the remaining columns are re-solved in float64
    from the current iterate (counted in ``n_fallback_columns``).
    """
    b = np.asarray(b)
    if b.ndim != 2:
        raise ValueError(f"b must be (n, C), got shape {b.shape}")
    if tol <= 0:
        raise ValueError("tol must be positive")
    n, C = b.shape
    if op.n != n:
        raise ValueError(f"operator dim {op.n} != rhs rows {n}")
    if C != op.n_columns:
        raise ValueError(f"rhs has {C} columns but operator carries {op.n_columns} shifts")
    if max_refinements < 0:
        raise ValueError("max_refinements must be non-negative")
    op32 = op.single_precision()

    if x0 is None:
        X = np.zeros((n, C), dtype=np.complex128)
    else:
        X = np.asarray(x0).astype(np.complex128, copy=True)
        if X.shape != (n, C):
            raise ValueError(f"x0 shape {X.shape} != rhs shape {(n, C)}")

    b_norms = _column_norms(np.asarray(b, dtype=complex))
    converged = np.zeros(C, dtype=bool)
    broken = np.zeros(C, dtype=bool)
    col_iterations = np.full(C, -1, dtype=np.int64)
    col_applies = np.zeros(C, dtype=np.int64)
    residuals = np.full(C, np.inf)
    history: list[float] = []
    n_batched_applies = 0
    total_iterations = 0
    n_refinements = 0
    b_frob = float(np.linalg.norm(b_norms))

    zero = b_norms == 0.0
    converged[zero] = True
    col_iterations[zero] = 0
    residuals[zero] = 0.0
    X[:, zero] = 0.0

    rem = np.flatnonzero(~zero)
    prev_worst = np.inf
    fallback_cols = np.zeros(0, dtype=int)

    while rem.size:
        # float64 defect with the exact operator — the gate is the true
        # residual, never the f32 recurrence's own estimate.
        R = b[:, rem].astype(np.complex128) - op.apply(X[:, rem], rem)
        n_batched_applies += 1
        col_applies[rem] += 1
        rel = _column_norms(R) / b_norms[rem]
        residuals[rem] = rel
        if b_frob > 0.0:
            history.append(float(np.linalg.norm(residuals * b_norms)) / b_frob)

        done = rel <= tol
        newly = rem[done]
        converged[newly] = True
        col_iterations[newly] = np.where(
            col_iterations[newly] < 0, total_iterations, col_iterations[newly]
        )
        rem = rem[~done]
        R = R[:, ~done]
        rel = rel[~done]
        if rem.size == 0:
            break

        worst = float(rel.max())
        stalled = n_refinements > 0 and worst > _IR_MIN_PROGRESS * prev_worst
        if n_refinements >= max_refinements or stalled:
            fallback_cols = rem.copy()
            break
        prev_worst = worst

        # Column-normalized f32 correction solve: A dX = R / ||R_c||.
        scale = _column_norms(R)
        scale = np.where(scale == 0.0, 1.0, scale)
        inner = batched_cocg_solve(
            op32,
            (R / scale).astype(np.complex64),
            tol=inner_tol,
            max_iterations=max_iterations,
            preconditioner_groups=preconditioner_groups,
            cols=rem,
            stagnation_window=stagnation_window,
        )
        X[:, rem] += inner.solution.astype(np.complex128) * scale
        n_batched_applies += inner.n_batched_applies
        col_applies[rem] += inner.col_applies[: rem.size]
        total_iterations += inner.iterations
        n_refinements += 1

    if fallback_cols.size:
        # Budget exhausted or f32 hit its precision floor: finish the
        # stragglers with the float64 recurrence from the current iterate.
        res64 = batched_cocg_solve(
            op,
            b[:, fallback_cols],
            x0=X[:, fallback_cols],
            tol=tol,
            max_iterations=max_iterations,
            preconditioner_groups=preconditioner_groups,
            cols=fallback_cols,
            stagnation_window=stagnation_window,
        )
        X[:, fallback_cols] = res64.solution
        converged[fallback_cols] = res64.converged[: fallback_cols.size]
        broken[fallback_cols] = res64.broken[: fallback_cols.size]
        residuals[fallback_cols] = res64.residual_norms[: fallback_cols.size]
        settled = res64.col_iterations[: fallback_cols.size] >= 0
        col_iterations[fallback_cols[settled]] = (
            total_iterations + res64.col_iterations[: fallback_cols.size][settled]
        )
        n_batched_applies += res64.n_batched_applies
        col_applies[fallback_cols] += res64.col_applies[: fallback_cols.size]
        total_iterations += res64.iterations
        history.extend(res64.residual_history)
    elif rem.size:
        # Unreachable by construction (rem empties or becomes fallback_cols),
        # but keep the accounting honest if the loop is ever restructured.
        broken[rem] = True

    return BatchedSolveResult(
        solution=X,
        converged=converged,
        residual_norms=np.where(np.isfinite(residuals), residuals, np.inf),
        col_iterations=col_iterations,
        iterations=total_iterations,
        n_batched_applies=n_batched_applies,
        col_applies=col_applies,
        broken=broken,
        residual_history=history,
        dtype="float32_ir",
        n_refinements=n_refinements,
        n_fallback_columns=int(fallback_cols.size),
    )
