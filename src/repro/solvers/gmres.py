"""Restarted GMRES — the long-recurrence baseline.

The paper contrasts its short-recurrence block COCG against GMRES, which
solves arbitrary systems but whose per-iteration cost and memory grow with
the Krylov basis (no short recurrence). This implementation follows Saad &
Schultz (1986): Arnoldi with modified Gram-Schmidt and Givens-rotation
least squares, with restarts.
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import record_solves
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult


@record_solves("gmres")
def gmres_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    restart: int = 50,
    n: int | None = None,
) -> SolveResult:
    """Solve ``A x = b`` by restarted GMRES(m).

    Parameters
    ----------
    a:
        Any square operator (no symmetry assumed).
    b:
        Right-hand side ``(n,)``.
    x0:
        Initial guess (zero when omitted).
    tol:
        Relative residual tolerance.
    max_iterations:
        Total inner-iteration cap across restarts.
    restart:
        Krylov basis size ``m`` per cycle.
    """
    A = as_operator(a, n)
    b = np.asarray(b, dtype=complex)
    if b.ndim != 1:
        raise ValueError("gmres_solve expects a single right-hand side")
    if tol <= 0 or restart < 1:
        raise ValueError("tol must be positive and restart >= 1")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=complex, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, 0.0, [0.0])

    history: list[float] = []
    total_iters = 0
    r = b - A(x)
    beta = float(np.linalg.norm(r))
    history.append(beta / b_norm)
    if history[-1] <= tol:
        return SolveResult(x, True, 0, history[-1], history, n_matvec=A.n_applies)

    while total_iters < max_iterations:
        m = min(restart, max_iterations - total_iters)
        V = np.zeros((len(b), m + 1), dtype=complex)
        H = np.zeros((m + 1, m), dtype=complex)
        cs = np.zeros(m, dtype=complex)
        sn = np.zeros(m, dtype=complex)
        g = np.zeros(m + 1, dtype=complex)
        V[:, 0] = r / beta
        g[0] = beta
        k_used = 0
        for k in range(m):
            w = A(V[:, k])
            # Modified Gram-Schmidt with one reorthogonalization pass for
            # robustness on ill-conditioned Sternheimer shifts.
            for j in range(k + 1):
                H[j, k] = np.vdot(V[:, j], w)
                w -= H[j, k] * V[:, j]
            for j in range(k + 1):
                corr = np.vdot(V[:, j], w)
                H[j, k] += corr
                w -= corr * V[:, j]
            H[k + 1, k] = np.linalg.norm(w)
            lucky = abs(H[k + 1, k]) < 1e-14 * abs(H[0, 0] if k == 0 else 1.0)
            if not lucky:
                V[:, k + 1] = w / H[k + 1, k]
            # Apply stored Givens rotations to the new column.
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -np.conj(sn[j]) * H[j, k] + np.conj(cs[j]) * H[j + 1, k]
                H[j, k] = t
            # New rotation to annihilate H[k+1, k].
            denom = np.sqrt(abs(H[k, k]) ** 2 + abs(H[k + 1, k]) ** 2)
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k] = np.conj(H[k, k]) / denom
                sn[k] = np.conj(H[k + 1, k]) / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -np.conj(sn[k]) * g[k]
            g[k] = cs[k] * g[k]
            total_iters += 1
            k_used = k + 1
            history.append(abs(g[k + 1]) / b_norm)
            if history[-1] <= tol or lucky or total_iters >= max_iterations:
                break
        # Solve the small triangular system and update x.
        y = np.linalg.solve(H[:k_used, :k_used], g[:k_used]) if k_used else np.zeros(0)
        x = x + V[:, :k_used] @ y
        r = b - A(x)
        beta = float(np.linalg.norm(r))
        history[-1] = beta / b_norm  # replace estimate with true residual
        if history[-1] <= tol:
            return SolveResult(x, True, total_iters, history[-1], history, n_matvec=A.n_applies)

    return SolveResult(x, False, total_iters, history[-1], history, n_matvec=A.n_applies)


def gmres_block_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    restart: int = 50,
    n: int | None = None,
    preconditioner=None,
) -> SolveResult:
    """Column-by-column GMRES with the block-solver calling convention.

    Adapts :func:`gmres_solve` to the ``block_cocg_solve`` signature so the
    resilience layer can use GMRES as an escalation stage for block
    right-hand sides. Each column is solved independently to the *block*
    Frobenius criterion's column share; the aggregate result reports the
    block-relative Frobenius residual (Eq. 10), total iterations and total
    matvecs. ``preconditioner`` is accepted for signature compatibility and
    ignored (GMRES here runs unpreconditioned).
    """
    squeeze = False
    b = np.asarray(b, dtype=complex)
    if b.ndim == 1:
        b = b[:, None]
        squeeze = True
    if b.ndim != 2:
        raise ValueError(f"b must be (n,) or (n, s), got shape {b.shape}")
    n_rows, s = b.shape
    A = as_operator(a, n if n is not None else n_rows)
    if x0 is not None:
        x0 = np.asarray(x0, dtype=complex)
        if x0.ndim == 1:
            x0 = x0[:, None]
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != rhs shape {b.shape}")
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        out = np.zeros_like(b)
        return SolveResult(out[:, 0] if squeeze else out, True, 0, 0.0, [0.0], block_size=s)

    Y = np.empty_like(b)
    iterations = 0
    per_column_cap = max(1, max_iterations // s) if s > 1 else max_iterations
    all_converged = True
    for col in range(s):
        col_norm = float(np.linalg.norm(b[:, col]))
        if col_norm == 0.0:
            Y[:, col] = 0.0
            continue
        # The block Frobenius criterion needs ||R||_F <= tol * ||B||_F;
        # driving each column to tol * ||B||_F / sqrt(s) guarantees it
        # (columns at the plain per-column share can overshoot by sqrt(s)).
        col_tol = min(1.0, tol * b_norm / (np.sqrt(s) * col_norm))
        r = gmres_solve(
            A,
            b[:, col],
            x0=None if x0 is None else x0[:, col],
            tol=col_tol,
            max_iterations=per_column_cap,
            restart=restart,
        )
        Y[:, col] = r.solution
        iterations = max(iterations, r.iterations)
        all_converged = all_converged and r.converged
    residual = float(np.linalg.norm(b - A(Y))) / b_norm
    converged = all_converged and residual <= tol
    return SolveResult(
        Y[:, 0] if squeeze else Y,
        converged,
        iterations,
        residual,
        [residual],
        n_matvec=A.n_applies,
        block_size=s,
    )
