"""Result records returned by the Krylov solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


@dataclass
class SolveResult:
    """Outcome of a (block) linear solve.

    Attributes
    ----------
    solution:
        ``(n,)`` or ``(n, s)`` solution array.
    converged:
        Whether the stopping criterion (relative residual) was met.
    iterations:
        Krylov iterations performed.
    residual_norm:
        Final relative residual (Frobenius over the block, Eq. 10).
    residual_history:
        Relative residual after each iteration (including iteration 0).
    n_matvec:
        Total operator applications, counted per column.
    block_size:
        Number of right-hand sides solved simultaneously.
    breakdown:
        True when a short-recurrence breakdown (singular small matrix) was
        detected and the solver exited early.
    per_column_iterations:
        Optional per-column first-convergence iteration (``-1`` for columns
        that never crossed the tolerance). Populated by the block solvers
        only at full telemetry level; ``None`` otherwise.
    dtype:
        Working precision of the solve: ``"float64"`` (default),
        ``"float32"`` (a raw single-precision recurrence) or
        ``"float32_ir"`` (f32 iterations + f64 iterative refinement).
    """

    solution: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)
    n_matvec: int = 0
    block_size: int = 1
    breakdown: bool = False
    per_column_iterations: list[int] | None = None
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")


@dataclass
class SolveSummary:
    """Totals over a set of (block) solves.

    Replaces the hand-summed ``sum(r.n_matvec for r in ...)`` /
    ``sum(r.iterations for r in ...)`` idiom that used to be repeated in
    ``repro.core.sternheimer`` and ``repro.solvers.block_size``:
    accumulate once here, merge anywhere.
    """

    n_solves: int = 0
    n_systems: int = 0
    iterations: int = 0
    n_matvec: int = 0
    n_breakdowns: int = 0
    n_unconverged: int = 0
    block_size_counts: dict[int, int] = field(default_factory=dict)
    # Resilience-layer totals (zero unless solves ran through an
    # EscalationPolicy): extra attempts beyond the first, solves whose
    # winning stage was not the first, and successes per stage name.
    n_retries: int = 0
    n_escalations: int = 0
    stage_counts: dict[str, int] = field(default_factory=dict)
    # Working precision histogram: dtype string -> number of solves run at
    # that precision (``"float32_ir"`` marks the mixed-precision path).
    dtype_counts: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, results: Iterable[SolveResult]) -> "SolveSummary":
        """Summary of an iterable of :class:`SolveResult`."""
        summary = cls()
        for r in results:
            summary.n_solves += 1
            summary.n_systems += r.block_size
            summary.iterations += r.iterations
            summary.n_matvec += r.n_matvec
            summary.n_breakdowns += int(r.breakdown)
            summary.n_unconverged += int(not r.converged)
            summary.block_size_counts[r.block_size] = (
                summary.block_size_counts.get(r.block_size, 0) + 1
            )
            dtype = getattr(r, "dtype", "float64")
            summary.dtype_counts[dtype] = summary.dtype_counts.get(dtype, 0) + 1
            attempts = getattr(r, "attempts", None)
            if attempts:
                summary.n_retries += len(attempts) - 1
                summary.n_escalations += int(getattr(r, "escalated", False))
                stage = getattr(r, "stage", "")
                if stage:
                    summary.stage_counts[stage] = summary.stage_counts.get(stage, 0) + 1
        return summary

    def merge(self, other: "SolveSummary") -> "SolveSummary":
        """In-place accumulate ``other``; returns ``self`` for chaining."""
        self.n_solves += other.n_solves
        self.n_systems += other.n_systems
        self.iterations += other.iterations
        self.n_matvec += other.n_matvec
        self.n_breakdowns += other.n_breakdowns
        self.n_unconverged += other.n_unconverged
        for k, v in other.block_size_counts.items():
            self.block_size_counts[k] = self.block_size_counts.get(k, 0) + v
        self.n_retries += other.n_retries
        self.n_escalations += other.n_escalations
        for k, v in other.stage_counts.items():
            self.stage_counts[k] = self.stage_counts.get(k, 0) + v
        for k, v in other.dtype_counts.items():
            self.dtype_counts[k] = self.dtype_counts.get(k, 0) + v
        return self

    @property
    def converged(self) -> bool:
        """True when at least one solve ran and none failed to converge."""
        return self.n_solves > 0 and self.n_unconverged == 0


@dataclass
class BlockSizeDecision:
    """One probe step of the dynamic block-size selection (Algorithm 4)."""

    block_size: int
    columns: int
    cost: float
    accepted: bool


@dataclass
class DynamicSolveResult:
    """Outcome of :func:`repro.solvers.block_size.solve_with_dynamic_block_size`.

    ``block_size_counts`` maps block size -> number of block solves performed
    at that size (the quantity tabulated in the paper's Table IV).
    """

    solution: np.ndarray
    converged: bool
    selected_block_size: int
    block_size_counts: dict[int, int]
    decisions: list[BlockSizeDecision]
    chunk_results: list[SolveResult]
    total_iterations: int
    n_matvec: int

    @property
    def residual_norm(self) -> float:
        if not self.chunk_results:
            return 0.0
        return max(r.residual_norm for r in self.chunk_results)

    def summary(self) -> SolveSummary:
        """Aggregate totals over the per-chunk solves."""
        return SolveSummary.of(self.chunk_results)
