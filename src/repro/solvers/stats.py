"""Result records returned by the Krylov solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SolveResult:
    """Outcome of a (block) linear solve.

    Attributes
    ----------
    solution:
        ``(n,)`` or ``(n, s)`` solution array.
    converged:
        Whether the stopping criterion (relative residual) was met.
    iterations:
        Krylov iterations performed.
    residual_norm:
        Final relative residual (Frobenius over the block, Eq. 10).
    residual_history:
        Relative residual after each iteration (including iteration 0).
    n_matvec:
        Total operator applications, counted per column.
    block_size:
        Number of right-hand sides solved simultaneously.
    breakdown:
        True when a short-recurrence breakdown (singular small matrix) was
        detected and the solver exited early.
    """

    solution: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)
    n_matvec: int = 0
    block_size: int = 1
    breakdown: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")


@dataclass
class BlockSizeDecision:
    """One probe step of the dynamic block-size selection (Algorithm 4)."""

    block_size: int
    columns: int
    cost: float
    accepted: bool


@dataclass
class DynamicSolveResult:
    """Outcome of :func:`repro.solvers.block_size.solve_with_dynamic_block_size`.

    ``block_size_counts`` maps block size -> number of block solves performed
    at that size (the quantity tabulated in the paper's Table IV).
    """

    solution: np.ndarray
    converged: bool
    selected_block_size: int
    block_size_counts: dict[int, int]
    decisions: list[BlockSizeDecision]
    chunk_results: list[SolveResult]
    total_iterations: int
    n_matvec: int

    @property
    def residual_norm(self) -> float:
        if not self.chunk_results:
            return 0.0
        return max(r.residual_norm for r in self.chunk_results)
