"""Sternheimer solve recycling across subspace iterations and frequencies.

Every filtered-subspace iteration solves the same ``n_s`` Sternheimer
systems with a right-hand-side block that is *linear* in the operand
block ``V``: for orbital ``j``, ``B_j = -(V . Psi_j)``. Two pieces of
structure make the converged solutions ``Y_j`` reusable:

* **Rotation covariance.** The Rayleigh-Ritz step replaces ``V`` by
  ``V Q``, so the next solve's right-hand side is ``B_j Q`` — and by
  linearity its exact solution is ``Y_j Q``. Rotating the cached block by
  the same ``Q`` (via :meth:`SolveRecycler.rotate`, driven by the
  ``on_rotation`` hook of ``filtered_subspace_iteration``) keeps the
  cache aligned with the *next* operand, so the first solve after a
  Rayleigh-Ritz starts from an essentially converged iterate.

* **Frequency continuity.** The coefficient matrix differs between
  adjacent quadrature points only by the imaginary shift:
  ``(S + i omega') Y = B`` has residual ``i (omega' - omega) Y`` when
  seeded with the previous point's solution — small for the clustered
  transformed Gauss-Legendre points. A cache entry tagged with a
  different ``omega`` therefore still serves as a *seed* for the first
  iteration at a new frequency (Section III-F's warm start, applied to
  the linear solves instead of the eigenvectors).

Entries live per orbital as a full-width block so the simulated-MPI
driver — whose ranks solve disjoint column slices of the same block —
shares one coherent cache: each rank's store fills its slice (see
:meth:`SolveRecycler.columns`) and rotation happens once the block is
complete. A miss (cold orbital, incomplete slice, width mismatch) falls
back to the caller's Eq. 13 Galerkin guess.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import get_tracer


@dataclass
class RecycleStats:
    """Hit/miss accounting for one :class:`SolveRecycler`."""

    hits: int = 0  # exact (orbital, omega) hits
    omega_seeds: int = 0  # served from a different omega's solution
    misses: int = 0
    stores: int = 0
    skipped_stores: int = 0  # unconverged / width-mismatched / paused
    rotations: int = 0
    frozen_rotations: int = 0  # subset of rotations from SSA frozen-basis RR
    dropped: int = 0  # entries evicted by an incompatible rotation

    @property
    def served(self) -> int:
        """Guesses served from the cache (exact hits plus omega seeds)."""
        return self.hits + self.omega_seeds

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "omega_seeds": self.omega_seeds,
            "misses": self.misses,
            "stores": self.stores,
            "skipped_stores": self.skipped_stores,
            "rotations": self.rotations,
            "frozen_rotations": self.frozen_rotations,
            "dropped": self.dropped,
        }


@dataclass
class _Entry:
    """Cached solutions for one orbital: a full-width block plus metadata."""

    solution: np.ndarray  # (n_d, width) complex
    omegas: np.ndarray  # (width,) frequency each column was solved at
    valid: np.ndarray  # (width,) bool — columns written since creation


class SolveRecycler:
    """Per-(orbital, omega) cache of converged Sternheimer solutions.

    Parameters
    ----------
    width:
        Column count of the operand blocks being recycled (``n_eig`` for
        the RPA drivers). Applications with a different width — stochastic
        trace probes, diagnostics — bypass the cache entirely.
    max_orbitals:
        Optional cap on the number of cached orbitals (memory bound of
        ``max_orbitals * n_d * width * 16`` bytes); stores beyond the cap
        are skipped, never evicted mid-flight.

    Notes
    -----
    The recycler is attached to a :class:`repro.core.sternheimer.Chi0Operator`
    (``chi0.recycler = SolveRecycler(width=n_eig)``); the serial and
    simulated-MPI drivers wire :meth:`rotate` into the subspace iteration's
    ``on_rotation`` hook. Thread-backend operators share one recycler
    safely: every task touches only its own orbital's entry.
    """

    def __init__(self, width: int, max_orbitals: int | None = None) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        if max_orbitals is not None and max_orbitals < 1:
            raise ValueError("max_orbitals must be >= 1 (or None)")
        self.width = int(width)
        self.max_orbitals = max_orbitals
        self.enabled = True
        self.stats = RecycleStats()
        self._entries: dict[int, _Entry] = {}
        self._col0 = 0  # global column offset of the current operand slice
        # How the most recent guess() was served: "hit" (exact
        # (orbital, omega) match — exact by linearity after rotations),
        # "seed" (cross-frequency warm start), or None (miss / disabled).
        # Consumers (the verifier's recycled-guess linearity check) read it
        # immediately after guess(); it carries no cross-call state.
        self.last_guess_kind: str | None = None
        # Global column slices of the most recent guess()/store(), for the
        # verifier's shadow-projection bookkeeping (None on miss/skip).
        self.last_guess_slice: tuple[int, int] | None = None
        self.last_store_slice: tuple[int, int] | None = None

    # -- slice / lifecycle management -----------------------------------------

    @contextmanager
    def columns(self, start: int, stop: int):
        """Scope the cache to the global column range ``[start, stop)``.

        The simulated-MPI driver applies ``chi0`` to per-rank column
        slices; inside this context the recycler maps slice-local columns
        onto the full-width entries. The default scope is ``[0, width)``.
        """
        if not 0 <= start < stop <= self.width:
            raise ValueError(
                f"column range [{start}, {stop}) outside [0, {self.width})"
            )
        prev = self._col0
        self._col0 = int(start)
        try:
            yield self
        finally:
            self._col0 = prev

    @contextmanager
    def paused(self):
        """Temporarily disable lookups and stores (trace-probe applies)."""
        prev = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = prev

    def clear(self) -> None:
        self._entries.clear()

    @property
    def n_cached_orbitals(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Approximate cache footprint (solution blocks only)."""
        return sum(e.solution.nbytes for e in self._entries.values())

    # -- the cache proper ------------------------------------------------------

    def guess(self, j: int, omega: float, n_cols: int) -> np.ndarray | None:
        """Initial guess for orbital ``j``'s solve at ``omega``, or None.

        ``n_cols`` is the operand slice width; together with the active
        :meth:`columns` scope it selects which cached columns are served.
        Returns a fresh array (callers may overwrite it freely).
        """
        self.last_guess_kind = None
        self.last_guess_slice = None
        if not self.enabled:
            return None
        lo, hi = self._col0, self._col0 + n_cols
        entry = self._entries.get(j)
        tracer = get_tracer()
        if entry is None or hi > self.width or not entry.valid[lo:hi].all():
            self.stats.misses += 1
            if tracer.enabled:
                tracer.incr("recycle_misses")
            return None
        tags = entry.omegas[lo:hi]
        if np.all(tags == omega):
            self.stats.hits += 1
            self.last_guess_kind = "hit"
            if tracer.enabled:
                tracer.incr("recycle_hits")
        else:
            self.stats.omega_seeds += 1
            self.last_guess_kind = "seed"
            if tracer.enabled:
                tracer.incr("recycle_omega_seeds")
        self.last_guess_slice = (lo, hi)
        return entry.solution[:, lo:hi].copy()

    def store(self, j: int, omega: float, solution: np.ndarray,
              converged: bool = True) -> bool:
        """Cache orbital ``j``'s converged solution block at ``omega``.

        Unconverged solves are never cached (a best-effort iterate may be
        arbitrarily far from the solution and would poison later guesses).
        Returns True when the block was stored.
        """
        solution = np.asarray(solution)
        if solution.ndim == 1:
            solution = solution[:, None]
        n_cols = solution.shape[1]
        lo, hi = self._col0, self._col0 + n_cols
        self.last_store_slice = None
        if not self.enabled or not converged or hi > self.width:
            self.stats.skipped_stores += 1
            return False
        entry = self._entries.get(j)
        if entry is None:
            if self.max_orbitals is not None and len(self._entries) >= self.max_orbitals:
                self.stats.skipped_stores += 1
                return False
            entry = _Entry(
                solution=np.zeros((solution.shape[0], self.width), dtype=complex),
                omegas=np.full(self.width, np.nan),
                valid=np.zeros(self.width, dtype=bool),
            )
            self._entries[j] = entry
        elif entry.solution.shape[0] != solution.shape[0]:
            self.stats.skipped_stores += 1
            return False
        entry.solution[:, lo:hi] = solution
        entry.omegas[lo:hi] = omega
        entry.valid[lo:hi] = True
        self.last_store_slice = (lo, hi)
        self.stats.stores += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("recycle_stores")
        return True

    def rotate(self, q: np.ndarray) -> None:
        """Rotate every complete cached block by the Rayleigh-Ritz ``Q``.

        By linearity of the Sternheimer systems in their right-hand sides,
        ``Y_j Q`` solves the system for the rotated operand ``V Q`` — the
        cache stays *exactly* aligned with the subspace iteration's next
        operand. Incomplete entries (a rank's slice missing) cannot be
        rotated coherently and are dropped.
        """
        q = np.asarray(q)
        if q.ndim != 2 or q.shape[0] != self.width:
            # A rotation for some other block width (e.g. a diagnostic run
            # sharing the hook); nothing cached here can use it.
            return
        stale = [j for j, e in self._entries.items() if not e.valid.all()]
        for j in stale:
            del self._entries[j]
            self.stats.dropped += 1
        new_width = q.shape[1]
        for entry in self._entries.values():
            entry.solution = entry.solution @ q
            if new_width != self.width or not np.all(
                entry.omegas == entry.omegas[0]
            ):
                # Columns solved at mixed frequencies blend under rotation;
                # tag them as seeds (served, but never an exact omega hit).
                entry.omegas = np.full(new_width, np.nan)
                entry.valid = np.ones(new_width, dtype=bool)
        self.width = new_width
        self.stats.rotations += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("recycle_rotations")

    def rotate_frozen(self, q: np.ndarray) -> None:
        """Rotation hook for the SSA frozen-basis Rayleigh-Ritz.

        The frozen path still rotates ``V <- V Q`` at every quadrature
        point, so the same linearity contract as :meth:`rotate` applies —
        cached cross-frequency seeds stay aligned with the frozen basis as
        it drifts through the sweep. Counted separately so telemetry can
        attribute cache alignment to the static-subspace path.
        """
        self.rotate(q)
        self.stats.frozen_rotations += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.incr("recycle_frozen_rotations")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolveRecycler(width={self.width}, "
                f"orbitals={len(self._entries)}, stats={self.stats.as_dict()})")
