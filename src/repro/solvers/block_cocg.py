"""Block COCG — the paper's Algorithm 3.

A short-term-recurrence block Krylov method for ``A Y = B`` with complex
symmetric ``A`` and ``s`` right-hand sides treated simultaneously. Per
iteration it costs:

* one operator application to an ``(n, s)`` block (line 6),
* five ``O(n s^2)`` BLAS-3 matrix products (lines 5, 7, 9, 10, 11),
* two ``O(s^3)`` small solves (lines 8, 12).

Larger ``s`` reduces iteration counts for numerically difficult spectra
(O'Leary's block-CG theory) at the price of the ``O(n s^2)`` terms — the
trade Algorithm 4 (``repro.solvers.block_size``) navigates dynamically.

Stopping follows Eq. 10: ``||W||_F <= tol * ||B||_F``.

Robustness
----------
As the paper notes, block methods "may require deflation if the residual
vectors become linearly dependent". We handle rank deficiency of the
``s x s`` recurrence matrices with truncated least-squares solves (the
dependent directions receive no update, which is the correct deflated
behaviour in exact arithmetic) and detect stagnation; a stagnated or
non-finite recurrence returns the best iterate seen with
``breakdown=True`` so callers (Algorithm 4) can fall back to a smaller
block size.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs.telemetry import get_recorder, record_solves
from repro.obs.tracer import get_tracer
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult

# Relative singular-value floor for the s x s recurrence solves.
_SMALL_RCOND = 1e-14
# Iterations without any Frobenius-residual improvement before we stop.
_STAGNATION_WINDOW = 40


@record_solves("block_cocg")
def block_cocg_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    n: int | None = None,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
) -> SolveResult:
    """Solve the complex symmetric block system ``A Y = B`` (Algorithm 3).

    Parameters
    ----------
    a:
        Complex symmetric operator accepting ``(n, s)`` blocks.
    b:
        Right-hand sides, ``(n, s)`` (a 1-D vector is treated as ``s = 1``).
    x0:
        Initial block guess (zero when omitted), e.g. the Eq. 13 Galerkin
        projection from ``repro.solvers.galerkin_guess``.
    tol:
        Relative block-Frobenius residual tolerance (Eq. 10).
    max_iterations:
        Iteration cap.
    preconditioner:
        Optional ``M^{-1}`` application for real SPD ``M`` (applied blockwise).

    Returns
    -------
    SolveResult
        ``solution`` has the same shape as ``b``. ``breakdown=True`` marks a
        non-finite or stagnated recurrence; the best iterate encountered is
        returned in that case.
    """
    squeeze = False
    b = np.asarray(b, dtype=complex)
    if b.ndim == 1:
        b = b[:, None]
        squeeze = True
    if b.ndim != 2:
        raise ValueError(f"b must be (n,) or (n, s), got shape {b.shape}")
    if tol <= 0:
        raise ValueError("tol must be positive")
    n_rows, s = b.shape
    A = as_operator(a, n if n is not None else n_rows)
    if A.n != n_rows:
        raise ValueError(f"operator dim {A.n} != rhs rows {n_rows}")

    if x0 is None:
        Y = np.zeros_like(b)
    else:
        Y = np.array(x0, dtype=complex, copy=True)
        if Y.ndim == 1:
            Y = Y[:, None]
        if Y.shape != b.shape:
            raise ValueError(f"x0 shape {Y.shape} != rhs shape {b.shape}")

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        out = np.zeros_like(b)
        return SolveResult(out[:, 0] if squeeze else out, True, 0, 0.0, [0.0], block_size=s)

    M = preconditioner if preconditioner is not None else (lambda v: v)

    best_Y = Y.copy()
    best_res = np.inf

    tracer = get_tracer()
    t_solve = tracer.now() if tracer.enabled else 0.0

    # Full-level telemetry tracks each column's first tolerance crossing
    # (the per-column convergence iteration); the recurrence itself never
    # reads these, so the numerics are untouched at any level.
    recorder = get_recorder()
    track_cols = recorder.enabled and recorder.full and s > 1
    if track_cols:
        col_b_norms = np.linalg.norm(b, axis=0)
        col_b_norms = np.where(col_b_norms == 0.0, 1.0, col_b_norms)
        # Compare squared norms against (tol * ||b_j||)^2: no sqrt, and the
        # einsum below avoids the |R| temporary linalg.norm would allocate.
        col_tol_sq = (tol * col_b_norms) ** 2
        col_first = np.full(s, -1, dtype=int)

    def _mark_columns(iteration: int, residual_block: np.ndarray) -> None:
        pending = col_first < 0
        if not pending.any():
            return
        col_sq = np.einsum("ij,ij->j", residual_block.conj(),
                           residual_block).real
        col_first[pending & (col_sq <= col_tol_sq)] = iteration

    def _result(converged: bool, iterations: int, history, breakdown: bool = False) -> SolveResult:
        sol = best_Y if breakdown else Y
        sol_out = sol[:, 0] if squeeze else sol
        final = min(history[-1], best_res) if breakdown else history[-1]
        if tracer.enabled:
            tracer.record(
                "cocg_solve", t_solve, block_size=s, iterations=iterations,
                n_matvec=A.n_applies, residual=final, converged=converged,
                breakdown=breakdown,
            )
            if breakdown:
                tracer.event("cocg_breakdown", block_size=s, iteration=iterations)
                tracer.incr("cocg_breakdowns")
        return SolveResult(
            sol_out,
            converged,
            iterations,
            final,
            history,
            n_matvec=A.n_applies,
            block_size=s,
            breakdown=breakdown,
            per_column_iterations=(
                [int(v) for v in col_first] if track_cols else None
            ),
        )

    W = b - A(Y) if x0 is not None else b.copy()
    history = [float(np.linalg.norm(W)) / b_norm]
    best_res = history[-1]
    if track_cols:
        _mark_columns(0, W)
    if history[-1] <= tol:
        return _result(True, 0, history)

    Z = M(W)
    rho = W.T @ Z  # unconjugated s x s
    P = Z.copy()
    since_improvement = 0

    for it in range(1, max_iterations + 1):
        t_iter = tracer.now() if tracer.enabled else 0.0
        U = A(P)
        mu = P.T @ U
        alpha = _small_solve(mu, rho)
        if alpha is None:
            return _result(False, it - 1, history, breakdown=True)
        Y += P @ alpha
        W -= U @ alpha
        rel = float(np.linalg.norm(W)) / b_norm
        history.append(rel)
        if tracer.enabled:
            tracer.record("cocg_iteration", t_iter, iteration=it,
                          block_size=s, residual=rel)
        if track_cols and np.isfinite(rel):
            _mark_columns(it, W)
        if not np.isfinite(rel):
            return _result(False, it, history, breakdown=True)
        if rel < best_res:
            best_res = rel
            np.copyto(best_Y, Y)
            since_improvement = 0
        else:
            since_improvement += 1
        if rel <= tol:
            return _result(True, it, history)
        if since_improvement >= _STAGNATION_WINDOW:
            return _result(False, it, history, breakdown=True)
        Z = M(W)
        rho_new = W.T @ Z
        beta = _small_solve(rho, rho_new)
        if beta is None:
            return _result(False, it, history, breakdown=True)
        P = Z + P @ beta
        rho = rho_new

    return _result(False, max_iterations, history)


def _small_solve(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve the ``s x s`` recurrence system with rank-deficiency handling.

    Returns None when the system is non-finite (true breakdown); dependent
    directions are truncated via least squares, matching exact-arithmetic
    deflation of converged residual columns.
    """
    if not (np.all(np.isfinite(lhs)) and np.all(np.isfinite(rhs))):
        return None
    if lhs.shape == (1, 1):
        if abs(lhs[0, 0]) < 1e-300:
            return None
        return rhs / lhs[0, 0]
    try:
        sol = np.linalg.solve(lhs, rhs)
        if np.all(np.isfinite(sol)):
            # Guard against catastrophic amplification from near-singularity.
            scale = np.linalg.norm(rhs) / max(np.linalg.norm(lhs), 1e-300)
            if np.linalg.norm(sol) < 1e8 * max(scale, 1.0):
                return sol
    except np.linalg.LinAlgError:
        pass
    sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=_SMALL_RCOND)
    if not np.all(np.isfinite(sol)):
        return None
    return sol
