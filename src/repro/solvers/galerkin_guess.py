"""Galerkin-projection initial guess for Sternheimer solves (Eq. 13).

The KS-DFT stage supplies the lowest ``n_s`` eigenpairs of ``H``. The
Sternheimer coefficient matrix ``A_{j,k} = H - lambda_j I + i omega_k I``
shares those eigenvectors with eigenvalues shifted by ``-lambda_j +
i omega_k``; projecting the right-hand side onto the known eigenspace and
inverting the (diagonal) projected operator yields

    Y0 = Psi (E - lambda_j I + i omega_k I)^{-1} Psi^H B

which deflates the most-negative-real part of the spectrum from the initial
residual — the paper's cure for the numerically hard ``(n_s, l)`` index
pairs.
"""

from __future__ import annotations

import numpy as np


def galerkin_initial_guess(
    psi: np.ndarray,
    eigenvalues: np.ndarray,
    lambda_j: float,
    omega: float,
    b: np.ndarray,
) -> np.ndarray:
    """Construct the Eq. 13 initial guess ``Y0``.

    Parameters
    ----------
    psi:
        ``(n_d, n_known)`` orthonormal known eigenvectors of ``H`` (real).
    eigenvalues:
        ``(n_known,)`` matching eigenvalues (the diagonal of ``E``).
    lambda_j:
        Shift from the orbital being perturbed.
    omega:
        Imaginary shift (quadrature frequency), must be nonzero when
        ``lambda_j`` coincides with a known eigenvalue.
    b:
        Right-hand side block ``(n_d,)`` or ``(n_d, s)``.

    Returns
    -------
    ndarray of the same shape as ``b`` (complex).
    """
    psi = np.asarray(psi)
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if psi.ndim != 2:
        raise ValueError(f"psi must be (n_d, n_known), got shape {psi.shape}")
    if eigenvalues.shape != (psi.shape[1],):
        raise ValueError(
            f"eigenvalues shape {eigenvalues.shape} incompatible with psi {psi.shape}"
        )
    b = np.asarray(b)
    if b.shape[0] != psi.shape[0]:
        raise ValueError(f"rhs rows {b.shape[0]} != psi rows {psi.shape[0]}")
    shifts = eigenvalues - lambda_j + 1j * omega
    if np.abs(shifts).min() < 1e-14:
        raise ValueError("projected operator is singular: omega too close to zero")
    coeff = psi.conj().T @ b
    if coeff.ndim == 1:
        coeff = coeff / shifts
    else:
        coeff = coeff / shifts[:, None]
    return psi @ coeff


def residual_after_deflation(
    psi: np.ndarray,
    eigenvalues: np.ndarray,
    lambda_j: float,
    omega: float,
    b: np.ndarray,
    apply_a,
) -> float:
    """Relative residual of the Galerkin guess (diagnostic).

    With exact eigenpairs the residual equals the component of ``b``
    orthogonal to ``span(psi)``; tests verify this identity.
    """
    y0 = galerkin_initial_guess(psi, eigenvalues, lambda_j, omega, b)
    r = b - apply_a(y0)
    return float(np.linalg.norm(r) / np.linalg.norm(b))
