"""Seed-projection method for multiple right-hand sides.

The paper's Section II weighs block methods against *seed* methods (Chan &
Wan, 1997) and dismisses the latter for the Sternheimer equations because
the right-hand sides are effectively random. We implement a standard seed
scheme anyway so the ablation benchmark can quantify that judgement:

1. Solve the seed system ``A x = b_seed`` with full-recurrence Arnoldi
   (GMRES), retaining the orthonormal Krylov basis ``V_m``.
2. For every other right-hand side, Galerkin-project onto ``V_m`` to get a
   (hopefully good) initial guess.
3. Polish each projected system with COCG from that guess.

For related right-hand sides the projection removes most of the work; for
unrelated ones it buys nothing — exactly the paper's argument.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.cocg import cocg_solve
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult


def seed_solve(
    a,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    seed_basis_size: int = 100,
    n: int | None = None,
) -> tuple[np.ndarray, list[SolveResult]]:
    """Solve ``A Y = B`` by the seed-projection scheme.

    Parameters
    ----------
    a:
        Complex symmetric operator (COCG is used for the polish solves).
    b:
        ``(n, s)`` right-hand sides; column 0 is the seed.
    tol, max_iterations:
        Per-system stopping parameters.
    seed_basis_size:
        Maximum Krylov basis retained from the seed solve.

    Returns
    -------
    (solution, results):
        ``solution`` is ``(n, s)``; ``results[i]`` is the polish-solve
        record for column ``i`` (column 0 is the seed solve itself).
    """
    b = np.asarray(b, dtype=complex)
    if b.ndim != 2 or b.shape[1] < 1:
        raise ValueError(f"b must be (n, s) with s >= 1, got {b.shape}")
    A = as_operator(a, n if n is not None else b.shape[0])
    # The shared CountingOperator accumulates applies across the whole
    # scheme (and across anything the caller ran on it before); every
    # result below must report its own *delta*, not the cumulative total.
    applies_at_entry = A.n_applies
    n_rows, s = b.shape
    m = min(seed_basis_size, max_iterations, n_rows)

    # -- seed solve with basis retention (Arnoldi + least squares) ----------
    seed_rhs = b[:, 0]
    beta = float(np.linalg.norm(seed_rhs))
    if beta == 0.0:
        raise ValueError("seed right-hand side is zero")
    V = np.zeros((n_rows, m + 1), dtype=complex)
    H = np.zeros((m + 1, m), dtype=complex)
    V[:, 0] = seed_rhs / beta
    k_used = 0
    for k in range(m):
        w = A(V[:, k])
        for j in range(k + 1):
            H[j, k] = np.vdot(V[:, j], w)
            w -= H[j, k] * V[:, j]
        H[k + 1, k] = np.linalg.norm(w)
        k_used = k + 1
        if abs(H[k + 1, k]) < 1e-14:
            break
        V[:, k + 1] = w / H[k + 1, k]
        # Cheap residual estimate via the least-squares problem.
        e1 = np.zeros(k + 2, dtype=complex)
        e1[0] = beta
        y, *_ = np.linalg.lstsq(H[: k + 2, : k + 1], e1, rcond=None)
        rnorm = float(np.linalg.norm(H[: k + 2, : k + 1] @ y - e1))
        if rnorm / beta <= tol:
            break

    e1 = np.zeros(k_used + 1, dtype=complex)
    e1[0] = beta
    y, *_ = np.linalg.lstsq(H[: k_used + 1, :k_used], e1, rcond=None)
    x_seed = V[:, :k_used] @ y
    seed_res = b[:, 0] - A(x_seed)
    results: list[SolveResult] = []
    seed_rel = float(np.linalg.norm(seed_res)) / beta
    if seed_rel > tol:
        polish = cocg_solve(A, b[:, 0], x0=x_seed, tol=tol, max_iterations=max_iterations)
        x_seed = polish.solution
        results.append(polish)
    else:
        results.append(SolveResult(x_seed, True, k_used, seed_rel, [seed_rel]))

    # -- projected guesses + polish for the remaining systems ----------------
    Vk = V[:, :k_used]
    AV = A(Vk)  # n x k block apply
    G = Vk.conj().T @ AV  # projected operator
    # Charge the seed solve with everything so far: the Arnoldi sweep, its
    # residual check, the optional polish, and the basis-projection block
    # apply (seed-scheme infrastructure that exists only for the seed basis).
    results[0].n_matvec = A.n_applies - applies_at_entry
    solution = np.empty_like(b)
    solution[:, 0] = x_seed
    for i in range(1, s):
        rhs_proj = Vk.conj().T @ b[:, i]
        try:
            coeffs = np.linalg.solve(G, rhs_proj)
        except np.linalg.LinAlgError:
            coeffs = np.linalg.lstsq(G, rhs_proj, rcond=None)[0]
        guess = Vk @ coeffs
        applies_before = A.n_applies
        res = cocg_solve(A, b[:, i], x0=guess, tol=tol, max_iterations=max_iterations)
        res.n_matvec = A.n_applies - applies_before
        solution[:, i] = res.solution
        results.append(res)
    return solution, results
