"""Classical conjugate gradients for Hermitian positive-definite systems.

Used for Poisson-type solves in tests and as the limiting case the COCG
recurrences must reduce to on real SPD input (a property test pins this).
"""

from __future__ import annotations

import numpy as np

from repro.obs.telemetry import record_solves
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult


@record_solves("cg")
def cg_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    n: int | None = None,
) -> SolveResult:
    """Solve ``A x = b`` for Hermitian positive-definite ``A``.

    Parameters
    ----------
    a:
        Operator (see :func:`repro.solvers.linear_operator.as_operator`).
    b:
        Right-hand side vector ``(n,)``.
    x0:
        Initial guess (zero when omitted).
    tol:
        Relative residual stopping tolerance ``||r|| <= tol ||b||``.
    max_iterations:
        Iteration cap.
    """
    A = as_operator(a, n)
    b = np.asarray(b)
    if b.ndim != 1:
        raise ValueError("cg_solve expects a single right-hand side")
    if tol <= 0:
        raise ValueError("tol must be positive")
    x = np.zeros_like(b) if x0 is None else np.array(x0, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, 0.0, [0.0])

    r = b - A(x)
    p = r.copy()
    rs = np.vdot(r, r)
    history = [float(np.sqrt(rs.real)) / b_norm]
    if history[-1] <= tol:
        return SolveResult(x, True, 0, history[-1], history, n_matvec=A.n_applies)

    for it in range(1, max_iterations + 1):
        Ap = A(p)
        denom = np.vdot(p, Ap)
        if denom.real <= 0 and abs(denom) < 1e-300:
            return SolveResult(x, False, it - 1, history[-1], history, A.n_applies, breakdown=True)
        alpha = rs / denom
        x = x + alpha * p
        r = r - alpha * Ap
        rs_new = np.vdot(r, r)
        history.append(float(np.sqrt(rs_new.real)) / b_norm)
        if history[-1] <= tol:
            return SolveResult(x, True, it, history[-1], history, n_matvec=A.n_applies)
        p = r + (rs_new / rs) * p
        rs = rs_new

    return SolveResult(x, False, max_iterations, history[-1], history, n_matvec=A.n_applies)
