"""Shifted inverse-Laplacian preconditioning (the paper's future-work item).

The Sternheimer coefficient matrix is dominated by the kinetic term
``-1/2 nabla^2``; the paper observes (Section V) that fast Poisson solves
make ``(-1/2 nabla^2 + sigma I)^{-1}`` a natural preconditioner for the
*difficult* systems, applied selectively. We realize it spectrally through
the same FFT/Kronecker diagonalization used for ``nu``, so one application
costs a pair of fast transforms.

The preconditioner is real SPD (for ``sigma > 0``), which is exactly the
class that preserves complex symmetry in preconditioned COCG.
"""

from __future__ import annotations

import numpy as np

from repro.grid.fourier import FourierLaplacian
from repro.grid.kronecker import KroneckerLaplacian
from repro.grid.mesh import Grid3D


class ShiftedLaplacianPreconditioner:
    """Application of ``M^{-1} = (-1/2 nabla^2 + sigma I)^{-1}``.

    Parameters
    ----------
    grid:
        Mesh the Sternheimer systems live on.
    radius:
        FD stencil radius (match the Hamiltonian's).
    shift:
        Positive regularization ``sigma``; a good generic choice is the
        magnitude of the Sternheimer shift ``|-lambda_j + i omega_k|``
        (use :meth:`for_shift`).
    """

    def __init__(self, grid: Grid3D, radius: int = 4, shift: float = 1.0) -> None:
        if shift <= 0.0:
            raise ValueError(f"shift must be positive, got {shift}")
        self.grid = grid
        self.shift = float(shift)
        if grid.bc == "periodic":
            self._lap = FourierLaplacian(grid, radius)
        else:
            self._lap = KroneckerLaplacian(grid, radius)

    def __call__(self, v: np.ndarray) -> np.ndarray:
        sigma = self.shift
        return self._lap.apply_function(lambda lam: 1.0 / (-0.5 * lam + sigma), v)

    @classmethod
    def for_shift(
        cls, grid: Grid3D, lambda_j: float, omega: float, radius: int = 4
    ) -> "ShiftedLaplacianPreconditioner":
        """Preconditioner tuned to the ``(j, k)`` Sternheimer shift.

        Uses ``sigma = |lambda_j| + omega`` so the preconditioned spectrum
        clusters near unity for the high-kinetic-energy modes that dominate
        the iteration count.
        """
        sigma = abs(lambda_j) + abs(omega)
        return cls(grid, radius=radius, shift=max(sigma, 1e-3))


def should_precondition(lambda_j: float, lambda_min: float, omega: float) -> bool:
    """Heuristic from Section V: precondition only the difficult systems.

    A system is "difficult" when its spectrum is indefinite (``lambda_j``
    above the bottom of the occupied manifold) and the imaginary shift is
    small. Easy systems converge in a handful of iterations and the extra
    transforms cannot pay for themselves.
    """
    indefinite = lambda_j > lambda_min + 1e-12
    near_singular = omega < 0.5
    return indefinite and near_singular
