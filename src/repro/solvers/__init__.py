"""Krylov-subspace linear solvers.

The paper's contribution lives here: the short-term-recurrence block COCG
method for complex symmetric systems (Algorithm 3), the dynamic block-size
selection (Algorithm 4) and the Galerkin deflating initial guess (Eq. 13) —
plus the baselines they are measured against (single-vector COCG, restarted
GMRES, classical CG, a seed-projection method) and the future-work shifted
inverse-Laplacian preconditioner.
"""

from repro.solvers.batched import (
    BatchedShiftedOperator,
    BatchedSolveResult,
    batched_cocg_ir_solve,
    batched_cocg_solve,
)
from repro.solvers.block_cocg import block_cocg_solve
from repro.solvers.block_cocg_bf import block_cocg_bf_solve
from repro.solvers.block_size import flop_cost_model, solve_with_dynamic_block_size
from repro.solvers.cg import cg_solve
from repro.solvers.cocg import cocg_solve
from repro.solvers.galerkin_guess import galerkin_initial_guess, residual_after_deflation
from repro.solvers.gmres import gmres_solve
from repro.solvers.linear_operator import CountingOperator, as_operator
from repro.solvers.preconditioner import ShiftedLaplacianPreconditioner, should_precondition
from repro.solvers.recycle import RecycleStats, SolveRecycler
from repro.solvers.seed import seed_solve
from repro.solvers.stats import (
    BlockSizeDecision,
    DynamicSolveResult,
    SolveResult,
    SolveSummary,
)

__all__ = [
    "BatchedShiftedOperator",
    "BatchedSolveResult",
    "batched_cocg_solve",
    "batched_cocg_ir_solve",
    "cg_solve",
    "cocg_solve",
    "block_cocg_solve",
    "block_cocg_bf_solve",
    "gmres_solve",
    "seed_solve",
    "solve_with_dynamic_block_size",
    "flop_cost_model",
    "galerkin_initial_guess",
    "residual_after_deflation",
    "ShiftedLaplacianPreconditioner",
    "should_precondition",
    "SolveRecycler",
    "RecycleStats",
    "CountingOperator",
    "as_operator",
    "SolveResult",
    "SolveSummary",
    "DynamicSolveResult",
    "BlockSizeDecision",
]
