"""Conjugate Orthogonal Conjugate Gradient (COCG) for complex symmetric systems.

COCG (van der Vorst & Melissen, 1990) solves ``A x = b`` with
``A = A^T in C^{n x n}`` using a three-term short recurrence built on the
*unconjugated* bilinear form ``<x, y> = x^T y``. It is the single-vector
specialization of the paper's Algorithm 3; the block solver in
``repro.solvers.block_cocg`` must reproduce it exactly at block size 1
(tested).

An optional real symmetric positive-definite preconditioner ``M ~ A`` is
supported (the paper's future-work item): the recurrence then uses
``z = M^{-1} w`` with the bilinear form ``w^T z``, which stays symmetric
because ``M`` is real SPD.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs.telemetry import record_solves
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult

_BREAKDOWN_EPS = 1e-300


@record_solves("cocg")
def cocg_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    n: int | None = None,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
) -> SolveResult:
    """Solve the complex symmetric system ``A x = b`` by (preconditioned) COCG.

    Parameters
    ----------
    a:
        Complex symmetric operator.
    b:
        Right-hand side ``(n,)``.
    x0:
        Initial guess (zero when omitted).
    tol:
        Relative residual tolerance ``||r||_2 <= tol * ||b||_2``.
    max_iterations:
        Iteration cap.
    preconditioner:
        Optional application of ``M^{-1}`` for real SPD ``M``.

    Notes
    -----
    COCG has no residual-optimality property (unlike GMRES); stagnation on
    highly indefinite spectra is expected and surfaces as
    ``converged=False``. A true breakdown (``p^T A p = 0`` or ``w^T z = 0``)
    sets ``breakdown=True``.
    """
    A = as_operator(a, n)
    b = np.asarray(b, dtype=complex)
    if b.ndim != 1:
        raise ValueError("cocg_solve expects a single right-hand side; use block_cocg_solve")
    if tol <= 0:
        raise ValueError("tol must be positive")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=complex, copy=True)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolveResult(np.zeros_like(b), True, 0, 0.0, [0.0])

    M = preconditioner if preconditioner is not None else (lambda v: v)
    w = b - A(x)
    z = M(w)
    rho = w @ z  # unconjugated
    history = [float(np.linalg.norm(w)) / b_norm]
    if history[-1] <= tol:
        return SolveResult(x, True, 0, history[-1], history, n_matvec=A.n_applies)

    p = z.copy()
    for it in range(1, max_iterations + 1):
        u = A(p)
        mu = p @ u
        if abs(mu) < _BREAKDOWN_EPS or abs(rho) < _BREAKDOWN_EPS:
            return SolveResult(x, False, it - 1, history[-1], history, A.n_applies, breakdown=True)
        alpha = rho / mu
        x = x + alpha * p
        w = w - alpha * u
        history.append(float(np.linalg.norm(w)) / b_norm)
        if history[-1] <= tol:
            return SolveResult(x, True, it, history[-1], history, n_matvec=A.n_applies)
        z = M(w)
        rho_new = w @ z
        beta = rho_new / rho
        p = z + beta * p
        rho = rho_new

    return SolveResult(x, False, max_iterations, history[-1], history, n_matvec=A.n_applies)
