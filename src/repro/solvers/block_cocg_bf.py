"""Breakdown-free block COCG with rank-revealing deflation.

The paper notes that block methods "may require deflation if the residual
vectors become linearly dependent". This module provides that deflating
variant, following the breakdown-free block CG construction of Ji & Li
(2017) adapted to the *unconjugated* bilinear form of COCG: the search
block is re-orthonormalized every iteration with a rank-revealing SVD, and
directions whose singular values fall below ``deflation_rcond`` of the
largest are dropped. Converged right-hand sides therefore stop consuming
work, and the recurrence keeps making progress far below the accuracy
floor of the plain Algorithm 3 (``repro.solvers.block_cocg``), at the cost
of one extra ``O(n s^2)`` orthonormalization per iteration.

Use the plain solver at the paper's production tolerances (1e-2); use this
one when residuals below ~1e-8 are required (e.g. the validation suite's
machine-precision cross-checks).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs.telemetry import get_recorder, record_solves
from repro.solvers.linear_operator import as_operator
from repro.solvers.stats import SolveResult


@record_solves("block_cocg_bf")
def block_cocg_bf_solve(
    a,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iterations: int = 1000,
    n: int | None = None,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    deflation_rcond: float = 1e-12,
) -> SolveResult:
    """Solve complex symmetric ``A Y = B`` by breakdown-free block COCG.

    Parameters mirror :func:`repro.solvers.block_cocg.block_cocg_solve`;
    ``deflation_rcond`` controls when search directions are deflated.
    """
    squeeze = False
    b = np.asarray(b, dtype=complex)
    if b.ndim == 1:
        b = b[:, None]
        squeeze = True
    if b.ndim != 2:
        raise ValueError(f"b must be (n,) or (n, s), got shape {b.shape}")
    if tol <= 0:
        raise ValueError("tol must be positive")
    n_rows, s = b.shape
    A = as_operator(a, n if n is not None else n_rows)
    if A.n != n_rows:
        raise ValueError(f"operator dim {A.n} != rhs rows {n_rows}")

    if x0 is None:
        Y = np.zeros_like(b)
        R = b.copy()
    else:
        Y = np.array(x0, dtype=complex, copy=True)
        if Y.ndim == 1:
            Y = Y[:, None]
        if Y.shape != b.shape:
            raise ValueError(f"x0 shape {Y.shape} != rhs shape {b.shape}")
        R = b - A(Y)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        out = np.zeros_like(b)
        return SolveResult(out[:, 0] if squeeze else out, True, 0, 0.0, [0.0], block_size=s)

    M = preconditioner if preconditioner is not None else (lambda v: v)

    # Full-level telemetry: per-column first tolerance crossing (read-only
    # on the residual block, numerics untouched).
    recorder = get_recorder()
    track_cols = recorder.enabled and recorder.full and s > 1
    if track_cols:
        col_b_norms = np.linalg.norm(b, axis=0)
        col_b_norms = np.where(col_b_norms == 0.0, 1.0, col_b_norms)
        # Squared-norm comparison (see block_cocg): no sqrt, no |R| temp.
        col_tol_sq = (tol * col_b_norms) ** 2
        col_first = np.full(s, -1, dtype=int)

    def _mark_columns(iteration: int, residual_block: np.ndarray) -> None:
        pending = col_first < 0
        if not pending.any():
            return
        col_sq = np.einsum("ij,ij->j", residual_block.conj(),
                           residual_block).real
        col_first[pending & (col_sq <= col_tol_sq)] = iteration

    def _result(converged: bool, it: int, history, breakdown: bool = False) -> SolveResult:
        sol = Y[:, 0] if squeeze else Y
        return SolveResult(
            sol, converged, it, history[-1], history,
            n_matvec=A.n_applies, block_size=s, breakdown=breakdown,
            per_column_iterations=(
                [int(v) for v in col_first] if track_cols else None
            ),
        )

    history = [float(np.linalg.norm(R)) / b_norm]
    if track_cols:
        _mark_columns(0, R)
    if history[-1] <= tol:
        return _result(True, 0, history)

    P = _orth(M(R), deflation_rcond)
    if P is None:
        return _result(False, 0, history, breakdown=True)

    for it in range(1, max_iterations + 1):
        Q = A(P)
        mu = P.T @ Q  # unconjugated; small (k x k), k <= s after deflation
        rhs = P.T @ R
        alpha = _robust_solve(mu, rhs)
        if alpha is None:
            return _result(False, it - 1, history, breakdown=True)
        Y += P @ alpha
        R -= Q @ alpha
        rel = float(np.linalg.norm(R)) / b_norm
        history.append(rel)
        if not np.isfinite(rel):
            return _result(False, it, history, breakdown=True)
        if track_cols:
            _mark_columns(it, R)
        if rel <= tol:
            return _result(True, it, history)
        Z = M(R)
        beta = _robust_solve(mu, Q.T @ Z)
        if beta is None:
            return _result(False, it, history, breakdown=True)
        P_new = _orth(Z - P @ beta, deflation_rcond)
        if P_new is None:
            return _result(False, it, history, breakdown=True)
        P = P_new

    return _result(False, max_iterations, history)


def _orth(block: np.ndarray, rcond: float) -> np.ndarray | None:
    """Rank-revealing orthonormal basis of ``block`` columns (SVD-based)."""
    if not np.all(np.isfinite(block)):
        return None
    u, sv, _ = np.linalg.svd(block, full_matrices=False)
    if sv.size == 0 or sv[0] == 0.0:
        return None
    keep = sv > rcond * sv[0]
    if not np.any(keep):
        return None
    return np.ascontiguousarray(u[:, keep])


def _robust_solve(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    if not (np.all(np.isfinite(lhs)) and np.all(np.isfinite(rhs))):
        return None
    try:
        sol = np.linalg.solve(lhs, rhs)
        if np.all(np.isfinite(sol)):
            return sol
    except np.linalg.LinAlgError:
        pass
    sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=1e-14)
    return sol if np.all(np.isfinite(sol)) else None
