"""Minimal linear-operator abstraction shared by all Krylov solvers.

Solvers accept anything convertible by :func:`as_operator`: a dense
ndarray, a scipy sparse matrix, an object with a ``.apply`` method (e.g.
the Hamiltonian), or a bare callable. The wrapper also counts operator
applications (by column) so benchmarks can report matvec totals.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp


class CountingOperator:
    """Wraps ``A`` as a block-apply callable and counts column applications.

    Parameters
    ----------
    apply_fn:
        Callable mapping an ``(n, s)`` or ``(n,)`` array to its image.
    n:
        Operator dimension.
    """

    def __init__(self, apply_fn: Callable[[np.ndarray], np.ndarray], n: int) -> None:
        self._apply = apply_fn
        self.n = int(n)
        self.n_applies = 0  # total columns pushed through the operator
        self.n_calls = 0  # number of block applications

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[0] != self.n:
            raise ValueError(f"operand leading dim {x.shape[0]} != operator dim {self.n}")
        self.n_calls += 1
        self.n_applies += 1 if x.ndim == 1 else x.shape[1]
        y = self._apply(x)
        y = np.asarray(y)
        if y.shape != x.shape:
            raise ValueError(f"operator returned shape {y.shape} for operand {x.shape}")
        return y

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)


def as_operator(a, n: int | None = None) -> CountingOperator:
    """Coerce ``a`` into a :class:`CountingOperator`.

    Parameters
    ----------
    a:
        ndarray, sparse matrix, object exposing ``.apply(x)``, existing
        :class:`CountingOperator`, or callable ``x -> A x``.
    n:
        Dimension, required only for bare callables.
    """
    if isinstance(a, CountingOperator):
        return a
    if isinstance(a, np.ndarray):
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix operand must be square, got {a.shape}")
        return CountingOperator(lambda x: a @ x, a.shape[0])
    if sp.issparse(a):
        if a.shape[0] != a.shape[1]:
            raise ValueError(f"sparse operand must be square, got {a.shape}")
        return CountingOperator(lambda x: a @ x, a.shape[0])
    if hasattr(a, "apply") and callable(a.apply):
        dim = getattr(a, "n_points", None) or getattr(a, "n", None)
        if dim is None:
            raise ValueError("operator object must expose n or n_points")
        return CountingOperator(a.apply, int(dim))
    if callable(a):
        if n is None:
            raise ValueError("dimension n required when wrapping a bare callable")
        return CountingOperator(a, n)
    raise TypeError(f"cannot interpret {type(a).__name__} as a linear operator")
