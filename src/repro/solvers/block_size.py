"""Dynamic block-size selection — the paper's Algorithm 4.

Each (simulated) processor owns a queue of right-hand-side columns for a
fixed Sternheimer coefficient matrix. It probes geometrically increasing
block sizes (1, 2, 4, ...) on successive chunks of the queue: doubling the
block size doubles the work per chunk, so the probe keeps doubling while

    t_new <= 2 * t_old        (per-chunk; equivalently per-column cost
                               non-increasing)

and settles on the last efficient size for the remaining columns. Costs are
wall-clock by default; a deterministic FLOP model (:func:`flop_cost_model`)
is provided for reproducible tests and for the simulated-MPI runtime.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

import numpy as np

from repro.obs.tracer import get_tracer
from repro.solvers.block_cocg import block_cocg_solve
from repro.solvers.stats import (
    BlockSizeDecision,
    DynamicSolveResult,
    SolveResult,
    SolveSummary,
)

CostFn = Callable[[SolveResult, float], float]


def flop_cost_model(apply_cost_per_column: float) -> CostFn:
    """Deterministic cost model mirroring Section III-B's per-iteration terms.

    ``cost = n_matvec * apply_cost + iterations * (5 n s^2 + 2 s^3)``

    Parameters
    ----------
    apply_cost_per_column:
        FLOPs charged per operator application to one column (e.g.
        ``(6 r + 1) * n_d`` for the stencil part plus the nonlocal term).
    """

    def cost(result: SolveResult, _wall: float) -> float:
        s = result.block_size
        n = result.solution.shape[0]
        blas3 = result.iterations * (5.0 * n * s * s + 2.0 * s**3)
        return result.n_matvec * apply_cost_per_column + blas3

    return cost


def solve_with_dynamic_block_size(
    a,
    b: np.ndarray,
    tol: float = 1e-8,
    max_iterations: int = 1000,
    x0: np.ndarray | None = None,
    max_block_size: int = 16,
    solver=block_cocg_solve,
    cost_fn: CostFn | None = None,
    n: int | None = None,
    preconditioner=None,
) -> DynamicSolveResult:
    """Solve ``A Y = B`` choosing the COCG block size on the fly (Algorithm 4).

    Parameters
    ----------
    a, b, tol, max_iterations, n, preconditioner:
        As in :func:`repro.solvers.block_cocg.block_cocg_solve`.
    x0:
        Optional initial guess for the *whole* block (columns are sliced to
        match each chunk).
    max_block_size:
        Upper bound on the probe (the parallel runtime caps this at
        ``n_eig / p`` — Section III-D).
    solver:
        Block solver with the ``block_cocg_solve`` signature.
    cost_fn:
        Maps ``(SolveResult, wall_seconds) -> cost``; wall-clock by default.

    Returns
    -------
    DynamicSolveResult
        Including ``block_size_counts`` (Table IV data) and the probe
        ``decisions`` trace.
    """
    b = np.asarray(b, dtype=complex)
    if b.ndim == 1:
        b = b[:, None]
    n_rhs = b.shape[1]
    if n_rhs == 0:
        raise ValueError("b must contain at least one right-hand side")
    if max_block_size < 1:
        raise ValueError("max_block_size must be >= 1")
    if x0 is not None:
        x0 = np.asarray(x0, dtype=complex)
        if x0.ndim == 1:
            x0 = x0[:, None]
        if x0.shape != b.shape:
            raise ValueError(f"x0 shape {x0.shape} != rhs shape {b.shape}")
    measure = cost_fn if cost_fn is not None else (lambda _res, wall: wall)
    tracer = get_tracer()

    Y = np.empty(b.shape, dtype=complex)
    decisions: list[BlockSizeDecision] = []
    chunk_results: list[SolveResult] = []
    counts: dict[int, int] = {}
    next_col = 0

    def _note_decision(decision: BlockSizeDecision) -> None:
        decisions.append(decision)
        if tracer.enabled:
            tracer.event("block_size_decision", block_size=decision.block_size,
                         columns=decision.columns, cost=decision.cost,
                         accepted=decision.accepted)

    def _solve_chunk(s: int) -> tuple[SolveResult, float, int]:
        nonlocal next_col
        cols = min(s, n_rhs - next_col)
        sl = slice(next_col, next_col + cols)
        guess = x0[:, sl] if x0 is not None else None
        kwargs = {"x0": guess, "tol": tol, "max_iterations": max_iterations, "n": n}
        if preconditioner is not None:
            kwargs["preconditioner"] = preconditioner
        start = perf_counter()
        res = solver(a, b[:, sl], **kwargs)
        wall = perf_counter() - start
        sol = res.solution if res.solution.ndim == 2 else res.solution[:, None]
        Y[:, sl] = sol
        chunk_results.append(res)
        counts[cols] = counts.get(cols, 0) + 1
        next_col += cols
        return res, measure(res, wall), cols

    # -- probe phase (Algorithm 4 lines 1-12) --------------------------------
    res, t_old, cols_old = _solve_chunk(1)
    s = 1
    # The size-1 probe's verdict is real, not a formality: a broken or
    # unconverged probe is recorded as rejected and must not anchor the
    # t_old comparison (its cost measures a failed solve, not size-1 work).
    anchor_ok = res.converged and not res.breakdown
    _note_decision(BlockSizeDecision(1, cols_old, t_old, accepted=anchor_ok))

    def _verdict(result: SolveResult, t_new: float, cols_new: int) -> bool:
        # Per-column cost comparison == the paper's t_new <= 2 t_old for
        # full chunks, but stays fair for ragged trailing chunks. With no
        # valid anchor, a healthy chunk is accepted on its own merits and
        # becomes the new anchor.
        if result.breakdown:
            return False
        if not anchor_ok:
            return result.converged
        return (t_new / cols_new) <= (t_old / cols_old)

    if next_col < n_rhs and max_block_size >= 2:
        res, t_new, cols_new = _solve_chunk(2)
        s = 2
        while next_col < n_rhs:
            efficient = _verdict(res, t_new, cols_new)
            _note_decision(BlockSizeDecision(s, cols_new, t_new, accepted=efficient))
            if not efficient:
                s = max(1, s // 2)
                break
            anchor_ok = True
            if 2 * s > max_block_size:
                break
            t_old, cols_old = t_new, cols_new
            s *= 2
            res, t_new, cols_new = _solve_chunk(s)
        else:
            # Queue exhausted during probing; record the final probe verdict.
            efficient = _verdict(res, t_new, cols_new)
            _note_decision(BlockSizeDecision(s, cols_new, t_new, accepted=efficient))
            if not efficient:
                s = max(1, s // 2)

    # -- steady phase (Algorithm 4 line 13) -----------------------------------
    while next_col < n_rhs:
        _solve_chunk(s)

    summary = SolveSummary.of(chunk_results)
    if tracer.enabled:
        tracer.gauge("selected_block_size", s, n_rhs=n_rhs)
    return DynamicSolveResult(
        solution=Y,
        converged=summary.converged,
        selected_block_size=s,
        block_size_counts=counts,
        decisions=decisions,
        chunk_results=chunk_results,
        total_iterations=summary.iterations,
        n_matvec=summary.n_matvec,
    )
